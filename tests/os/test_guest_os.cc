/** @file Unit tests for the OS model (native role). */

#include <gtest/gtest.h>

#include "mem/phys_accessor.hh"
#include "os/guest_os.hh"
#include "../test_support.hh"

namespace emv::os {
namespace {

class GuestOsTest : public ::testing::Test
{
  protected:
    static constexpr Addr kSpan = 256 * MiB;

    GuestOsTest() : mem(kSpan), accessor(mem) {}

    std::unique_ptr<GuestOs>
    makeOs(OsConfig cfg = {},
           std::vector<Interval> ram = {{0, kSpan}})
    {
        return std::make_unique<GuestOs>(accessor, kSpan, ram, cfg);
    }

    mem::PhysMemory mem;
    mem::HostPhysAccessor accessor;
};

TEST_F(GuestOsTest, CheckpointRoundTripRequiresSameBootShape)
{
    auto a = makeOs();
    auto &proc = a->createProcess();
    a->defineRegion(proc, "heap", 1 * GiB, 16 * MiB,
                    PageSize::Size4K);
    a->populateRange(proc, 1 * GiB, 4 * MiB);
    const auto bytes = test::ckptBytes(*a);

    // Restore follows the fresh-boot path: same process roster,
    // then deserialize overwrites the mutable state.
    auto b = makeOs();
    auto &bproc = b->createProcess();
    b->defineRegion(bproc, "heap", 1 * GiB, 16 * MiB,
                    PageSize::Size4K);
    ASSERT_TRUE(test::ckptRestore(bytes, *b));
    EXPECT_EQ(test::ckptBytes(*b), bytes);
    EXPECT_EQ(b->buddy().freeBytes(), a->buddy().freeBytes());
    EXPECT_EQ(bproc.pageTable().mappedLeaves(),
              proc.pageTable().mappedLeaves());

    // A different process roster is a structured failure.
    auto c = makeOs();
    EXPECT_FALSE(test::ckptRestore(bytes, *c));
}

TEST_F(GuestOsTest, BootRamIsFree)
{
    auto os = makeOs();
    EXPECT_EQ(os->buddy().freeBytes(), kSpan);
    EXPECT_EQ(os->ram().totalLength(), kSpan);
}

TEST_F(GuestOsTest, RamHolesAreNotAllocatable)
{
    auto os = makeOs({}, {{0, 64 * MiB}, {128 * MiB, kSpan}});
    EXPECT_EQ(os->buddy().freeBytes(), kSpan - 64 * MiB);
    // Everything allocatable lies inside declared RAM.
    for (int i = 0; i < 100; ++i) {
        auto block = os->allocDataBlock(PageSize::Size4K);
        ASSERT_TRUE(block.has_value());
        EXPECT_TRUE(os->ram().contains(*block));
    }
}

TEST_F(GuestOsTest, DemandPagingMapsOnFault)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 16 * MiB,
                     PageSize::Size4K);
    EXPECT_FALSE(proc.pageTable().translate(1 * GiB).has_value());
    auto outcome = os->handleFault(proc, 1 * GiB + 0x123);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.mappedSize, PageSize::Size4K);
    EXPECT_TRUE(proc.pageTable().translate(1 * GiB).has_value());
}

TEST_F(GuestOsTest, FaultOutsideRegionsFails)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    auto outcome = os->handleFault(proc, 0x1234);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(os->stats().counterValue("segfaults"), 1u);
}

TEST_F(GuestOsTest, PopulateRangeMapsEverything)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 4 * MiB,
                     PageSize::Size4K);
    os->populateRange(proc, 1 * GiB, 4 * MiB);
    EXPECT_EQ(proc.pageTable().mappedLeaves(), 1024u);
    for (Addr off = 0; off < 4 * MiB; off += kPage4K)
        ASSERT_TRUE(proc.pageTable().translate(1 * GiB + off));
}

TEST_F(GuestOsTest, PreferredPageSizeHonored)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 8 * MiB,
                     PageSize::Size2M);
    os->populateRange(proc, 1 * GiB, 8 * MiB);
    auto t = proc.pageTable().translate(1 * GiB);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->size, PageSize::Size2M);
    EXPECT_EQ(proc.pageTable().mappedLeaves(), 4u);
}

TEST_F(GuestOsTest, ThpPromotesMostFaults)
{
    OsConfig cfg;
    cfg.thp = true;
    auto os = makeOs(cfg);
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 32 * MiB,
                     PageSize::Size4K);
    os->populateRange(proc, 1 * GiB, 32 * MiB);
    EXPECT_GT(os->stats().counterValue("thp_promotions"), 8u);
    // Far fewer leaves than pure 4K mapping.
    EXPECT_LT(proc.pageTable().mappedLeaves(), 8192u);
}

TEST_F(GuestOsTest, UnmapFreesFrames)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 4 * MiB,
                     PageSize::Size4K);
    os->populateRange(proc, 1 * GiB, 4 * MiB);
    const Addr free_before = os->buddy().freeBytes();
    const auto unmapped = os->unmapRange(proc, 1 * GiB, 4 * MiB);
    EXPECT_EQ(unmapped, 1024u);
    EXPECT_EQ(os->buddy().freeBytes(), free_before + 4 * MiB);
    EXPECT_FALSE(proc.pageTable().translate(1 * GiB).has_value());
}

TEST_F(GuestOsTest, GuestSegmentCreation)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 32 * MiB,
                     PageSize::Size4K, /*primary=*/true);
    auto regs = os->createGuestSegment(proc);
    ASSERT_TRUE(regs.has_value());
    EXPECT_EQ(regs->base(), 1 * GiB);
    EXPECT_EQ(regs->length(), 32 * MiB);
    // Backing is reserved and unmovable.
    const Addr backing = regs->base() + regs->offset();
    EXPECT_FALSE(os->buddy().rangeFree(backing, 32 * MiB));
    EXPECT_TRUE(os->unmovable().intersectsRange(backing,
                                                backing + 32 * MiB));
}

TEST_F(GuestOsTest, GuestSegmentNeedsPrimaryRegion)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 32 * MiB,
                     PageSize::Size4K, /*primary=*/false);
    EXPECT_FALSE(os->createGuestSegment(proc).has_value());
}

TEST_F(GuestOsTest, GuestSegmentFailsWhenFragmented)
{
    auto os = makeOs();
    // Pin a page every 2M so no 32M run exists.
    for (Addr a = 0; a < kSpan; a += 2 * MiB)
        ASSERT_TRUE(os->buddy().allocateRange(a, kPage4K));
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 32 * MiB,
                     PageSize::Size4K, true);
    EXPECT_FALSE(os->createGuestSegment(proc).has_value());
    EXPECT_EQ(os->stats().counterValue("segment_failures"), 1u);
}

TEST_F(GuestOsTest, SegmentFaultUsesOffset)
{
    // §VI.B: faults on segment-backed pages compute the PA from
    // the segment offset.
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 32 * MiB,
                     PageSize::Size4K, true);
    auto regs = os->createGuestSegment(proc);
    ASSERT_TRUE(regs.has_value());
    auto outcome = os->handleFault(proc, 1 * GiB + 0x5123);
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.usedSegmentOffset);
    EXPECT_FALSE(outcome.remappedBadPage);
    auto t = proc.pageTable().translate(1 * GiB + 0x5000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, regs->translate(1 * GiB + 0x5000));
}

TEST_F(GuestOsTest, SegmentFaultRemapsBadFrame)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 32 * MiB,
                     PageSize::Size4K, true);
    auto regs = os->createGuestSegment(proc);
    ASSERT_TRUE(regs.has_value());
    const Addr bad_pa = regs->translate(1 * GiB + 0x8000);
    mem.markBad(bad_pa);
    auto outcome = os->handleFault(proc, 1 * GiB + 0x8000);
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.remappedBadPage);
    auto t = proc.pageTable().translate(1 * GiB + 0x8000);
    ASSERT_TRUE(t.has_value());
    EXPECT_NE(t->pa & ~(kPage4K - 1), bad_pa & ~(kPage4K - 1));
    EXPECT_FALSE(mem.isBad(t->pa));
}

TEST_F(GuestOsTest, ReleaseGuestSegmentRestoresMemory)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 32 * MiB,
                     PageSize::Size4K, true);
    const Addr free_before = os->buddy().freeBytes();
    auto regs = os->createGuestSegment(proc);
    ASSERT_TRUE(regs.has_value());
    os->handleFault(proc, 1 * GiB);  // A §VI.B emulation PTE.
    os->releaseGuestSegment(proc);
    EXPECT_EQ(os->buddy().freeBytes(), free_before);
    EXPECT_FALSE(proc.guestSegment().enabled());
}

TEST_F(GuestOsTest, BadFrameRetirementOnAllocation)
{
    auto os = makeOs();
    // Poison the top frame so the first top-down alloc trips it.
    mem.markBad(kSpan - kPage4K);
    auto block = os->allocDataBlock(PageSize::Size4K);
    ASSERT_TRUE(block.has_value());
    EXPECT_FALSE(mem.isBad(*block));
    EXPECT_EQ(os->badPageList().size(), 1u);
    EXPECT_EQ(os->stats().counterValue("bad_pages_retired"), 1u);
}

TEST_F(GuestOsTest, HotRemoveRequiresFreeMemory)
{
    auto os = makeOs();
    ASSERT_TRUE(os->buddy().allocateRange(64 * MiB, kPage4K));
    EXPECT_FALSE(os->hotRemove(64 * MiB, 2 * MiB));
    EXPECT_TRUE(os->hotRemove(66 * MiB, 2 * MiB));
    EXPECT_FALSE(os->ram().contains(66 * MiB));
}

TEST_F(GuestOsTest, HotAddExtendsAllocatableMemory)
{
    auto os = makeOs({}, {{0, 64 * MiB}});
    EXPECT_EQ(os->buddy().freeBytes(), 64 * MiB);
    os->hotAdd(128 * MiB, 64 * MiB);
    EXPECT_EQ(os->buddy().freeBytes(), 128 * MiB);
    EXPECT_TRUE(os->ram().containsRange(128 * MiB, 192 * MiB));
}

TEST_F(GuestOsTest, MappingHookFires)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 2 * MiB,
                     PageSize::Size4K);
    int mapped = 0, unmapped = 0;
    os->setMappingHook([&](Process &, Addr, Addr, PageSize,
                           bool is_map) {
        (is_map ? mapped : unmapped) += 1;
    });
    os->populateRange(proc, 1 * GiB, 2 * MiB);
    os->unmapRange(proc, 1 * GiB, 2 * MiB);
    EXPECT_EQ(mapped, 512);
    EXPECT_EQ(unmapped, 512);
}

TEST_F(GuestOsTest, RegionOverlapPanics)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    os->defineRegion(proc, "a", 1 * GiB, 2 * MiB, PageSize::Size4K);
    EXPECT_DEATH(os->defineRegion(proc, "b", 1 * GiB + kPage4K,
                                  2 * MiB, PageSize::Size4K),
                 "overlaps");
}

TEST_F(GuestOsTest, ThpSurvivesPartialRemapChurn)
{
    // Regression: churn unmaps part of a THP area; repopulation
    // must not attempt a 2M promotion over surviving 4K pages.
    OsConfig cfg;
    cfg.thp = true;
    cfg.thpCoverage = 1.0;
    auto os = makeOs(cfg);
    auto &proc = os->createProcess();
    os->defineRegion(proc, "heap", 1 * GiB, 16 * MiB,
                     PageSize::Size4K);
    os->populateRange(proc, 1 * GiB, 16 * MiB);
    // Unmap a 256K slice (drops the whole covering 2M leaf).
    os->unmapRange(proc, 1 * GiB + 4 * MiB + 256 * KiB, 256 * KiB);
    // Repopulate just the slice, then fault the rest back in.
    os->populateRange(proc, 1 * GiB + 4 * MiB + 256 * KiB,
                      256 * KiB);
    os->populateRange(proc, 1 * GiB, 16 * MiB);
    for (Addr off = 0; off < 16 * MiB; off += kPage4K)
        ASSERT_TRUE(proc.pageTable().translate(1 * GiB + off));
}

TEST_F(GuestOsTest, PageSizeFallbackAtRegionEdge)
{
    auto os = makeOs();
    auto &proc = os->createProcess();
    // 3M region asked to map at 2M: one 2M leaf + 4K tail.
    os->defineRegion(proc, "heap", 1 * GiB, 3 * MiB,
                     PageSize::Size2M);
    os->populateRange(proc, 1 * GiB, 3 * MiB);
    EXPECT_EQ(proc.pageTable().translate(1 * GiB)->size,
              PageSize::Size2M);
    EXPECT_EQ(proc.pageTable().translate(1 * GiB + 2 * MiB)->size,
              PageSize::Size4K);
}

} // namespace
} // namespace emv::os
