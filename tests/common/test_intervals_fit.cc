/** @file Unit tests for placement-directed interval fits. */

#include <gtest/gtest.h>

#include "common/intervals.hh"

namespace emv {
namespace {

TEST(FindFitLowAboveTest, PrefersLowestAtOrAboveMinStart)
{
    IntervalSet set;
    set.insert(0, 0x100000);
    set.insert(0x400000, 0x500000);
    set.insert(0x800000, 0x900000);
    auto fit = set.findFitLowAbove(0x1000, 0x1000, 0x200000);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x400000u);
}

TEST(FindFitLowAboveTest, PlacesInsideStraddlingInterval)
{
    IntervalSet set;
    set.insert(0, 0x800000);
    auto fit = set.findFitLowAbove(0x1000, 0x1000, 0x300000);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x300000u);
}

TEST(FindFitLowAboveTest, FallsBackBelowMinStart)
{
    IntervalSet set;
    set.insert(0x10000, 0x20000);
    auto fit = set.findFitLowAbove(0x1000, 0x1000, 0x40000000);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x10000u);
}

TEST(FindFitLowAboveTest, RespectsAlignment)
{
    IntervalSet set;
    set.insert(0x1800, 0x10000);
    auto fit = set.findFitLowAbove(0x1000, 0x4000, 0);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x4000u);
}

TEST(FindFitLowAboveTest, NothingFitsReturnsNullopt)
{
    IntervalSet set;
    set.insert(0, 0x1000);
    EXPECT_FALSE(
        set.findFitLowAbove(0x2000, 0x1000, 0).has_value());
}

TEST(FindFitLowAboveTest, MinStartZeroIsPlainLowestFit)
{
    IntervalSet set;
    set.insert(0x5000, 0x7000);
    set.insert(0x9000, 0xb000);
    auto fit = set.findFitLowAbove(0x1000, 0x1000, 0);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x5000u);
}

} // namespace
} // namespace emv
