/** @file Unit tests for the debug-trace flags. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.hh"

namespace emv {
namespace {

/** Installs an in-memory sink and clears flags on both ends. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::clearFlags();
        trace::setSink(&captured);
    }

    void
    TearDown() override
    {
        trace::setSink(nullptr);
        trace::clearFlags();
    }

    std::ostringstream captured;
};

TEST_F(TraceTest, DisabledFlagEmitsNothing)
{
    EMV_TRACE(Walk, "should not appear %d", 1);
    EXPECT_TRUE(captured.str().empty());
    EXPECT_FALSE(trace::enabled(trace::Flag::Walk));
}

TEST_F(TraceTest, EnabledFlagEmitsPrefixedRecord)
{
    ASSERT_TRUE(trace::setFlags("Walk"));
    EXPECT_TRUE(trace::enabled(trace::Flag::Walk));
    EMV_TRACE(Walk, "gva=%#x refs=%d", 0x1000, 24);
    EXPECT_EQ(captured.str(), "Walk: gva=0x1000 refs=24\n");
}

TEST_F(TraceTest, OnlyNamedFlagsEnabled)
{
    ASSERT_TRUE(trace::setFlags("Tlb,Filter"));
    EXPECT_TRUE(trace::enabled(trace::Flag::Tlb));
    EXPECT_TRUE(trace::enabled(trace::Flag::Filter));
    EXPECT_FALSE(trace::enabled(trace::Flag::Walk));
    EXPECT_FALSE(trace::enabled(trace::Flag::Balloon));

    EMV_TRACE(Walk, "hidden");
    EMV_TRACE(Tlb, "shown");
    EXPECT_EQ(captured.str(), "Tlb: shown\n");
}

TEST_F(TraceTest, AllEnablesEveryFlag)
{
    ASSERT_TRUE(trace::setFlags("All"));
    const unsigned num =
        static_cast<unsigned>(trace::Flag::NumFlags);
    EXPECT_EQ(trace::enabledFlags().size(), num);
    for (unsigned i = 0; i < num; ++i)
        EXPECT_TRUE(trace::enabled(static_cast<trace::Flag>(i)));
}

TEST_F(TraceTest, UnknownFlagRejectedAndStateUntouched)
{
    ASSERT_TRUE(trace::setFlags("Tlb"));
    EXPECT_FALSE(trace::setFlags("Tlb,Bogus"));
    // Failed parse leaves the previous set alone.
    EXPECT_TRUE(trace::enabled(trace::Flag::Tlb));
    EXPECT_FALSE(trace::enabled(trace::Flag::Walk));
}

TEST_F(TraceTest, EmptyCsvDisablesEverything)
{
    ASSERT_TRUE(trace::setFlags("All"));
    ASSERT_TRUE(trace::setFlags(""));
    EXPECT_TRUE(trace::enabledFlags().empty());
    EMV_TRACE(Vmm, "nope");
    EXPECT_TRUE(captured.str().empty());
}

TEST_F(TraceTest, FlagNamesRoundTrip)
{
    const unsigned num =
        static_cast<unsigned>(trace::Flag::NumFlags);
    for (unsigned i = 0; i < num; ++i) {
        const auto flag = static_cast<trace::Flag>(i);
        auto parsed = trace::flagByName(trace::flagName(flag));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, flag);
    }
    EXPECT_FALSE(trace::flagByName("NotAFlag").has_value());
    EXPECT_NE(trace::allFlagNames().find("Walk"),
              std::string::npos);
}

} // namespace
} // namespace emv
