/** @file Unit tests for the interval set. */

#include <gtest/gtest.h>

#include "common/intervals.hh"
#include "common/rng.hh"
#include "../test_support.hh"

namespace emv {
namespace {

TEST(IntervalSetTest, InsertAndContains)
{
    IntervalSet set;
    set.insert(10, 20);
    EXPECT_TRUE(set.contains(10));
    EXPECT_TRUE(set.contains(19));
    EXPECT_FALSE(set.contains(20));
    EXPECT_FALSE(set.contains(9));
}

TEST(IntervalSetTest, CoalescesAdjacent)
{
    IntervalSet set;
    set.insert(0, 10);
    set.insert(10, 20);
    EXPECT_EQ(set.count(), 1u);
    EXPECT_TRUE(set.containsRange(0, 20));
}

TEST(IntervalSetTest, CoalescesOverlapping)
{
    IntervalSet set;
    set.insert(0, 15);
    set.insert(10, 30);
    set.insert(25, 40);
    EXPECT_EQ(set.count(), 1u);
    EXPECT_EQ(set.totalLength(), 40u);
}

TEST(IntervalSetTest, InsertSwallowsExisting)
{
    IntervalSet set;
    set.insert(10, 12);
    set.insert(20, 22);
    set.insert(0, 100);
    EXPECT_EQ(set.count(), 1u);
    EXPECT_EQ(set.totalLength(), 100u);
}

TEST(IntervalSetTest, EraseSplits)
{
    IntervalSet set;
    set.insert(0, 100);
    set.erase(40, 60);
    EXPECT_EQ(set.count(), 2u);
    EXPECT_TRUE(set.containsRange(0, 40));
    EXPECT_TRUE(set.containsRange(60, 100));
    EXPECT_FALSE(set.contains(50));
}

TEST(IntervalSetTest, EraseAcrossIntervals)
{
    IntervalSet set;
    set.insert(0, 10);
    set.insert(20, 30);
    set.insert(40, 50);
    set.erase(5, 45);
    EXPECT_EQ(set.totalLength(), 10u);
    EXPECT_TRUE(set.containsRange(0, 5));
    EXPECT_TRUE(set.containsRange(45, 50));
}

TEST(IntervalSetTest, EmptyOperationsAreNoops)
{
    IntervalSet set;
    set.insert(5, 5);
    set.erase(1, 1);
    EXPECT_TRUE(set.empty());
}

TEST(IntervalSetTest, Largest)
{
    IntervalSet set;
    EXPECT_FALSE(set.largest().has_value());
    set.insert(0, 10);
    set.insert(100, 150);
    set.insert(200, 220);
    auto largest = set.largest();
    ASSERT_TRUE(largest.has_value());
    EXPECT_EQ(largest->start, 100u);
    EXPECT_EQ(largest->length(), 50u);
}

TEST(IntervalSetTest, FindFitBestFit)
{
    IntervalSet set;
    set.insert(0, 0x10000);        // 64K
    set.insert(0x100000, 0x102000);  // 8K — best fit for 8K.
    auto fit = set.findFit(0x2000, 0x1000);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x100000u);
}

TEST(IntervalSetTest, FindFitRespectsAlignment)
{
    IntervalSet set;
    set.insert(0x1800, 0x4800);
    auto fit = set.findFit(0x1000, 0x1000);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start % 0x1000, 0u);
    EXPECT_GE(fit->start, 0x1800u);
}

TEST(IntervalSetTest, FindFitFailsWhenTooSmall)
{
    IntervalSet set;
    set.insert(0, 0x1000);
    EXPECT_FALSE(set.findFit(0x2000).has_value());
}

TEST(IntervalSetTest, FindFitHighPrefersTop)
{
    IntervalSet set;
    set.insert(0, 0x100000);
    set.insert(0x400000, 0x500000);
    auto fit = set.findFitHigh(0x1000, 0x1000);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x4ff000u);
}

TEST(IntervalSetTest, FindFitHighSkipsSmallTopInterval)
{
    IntervalSet set;
    set.insert(0, 0x100000);
    set.insert(0x400000, 0x402000);  // Too small for 16K.
    auto fit = set.findFitHigh(0x4000, 0x1000);
    ASSERT_TRUE(fit.has_value());
    EXPECT_EQ(fit->start, 0x100000u - 0x4000u);
}

TEST(IntervalSetTest, IntersectsRange)
{
    IntervalSet set;
    set.insert(10, 20);
    EXPECT_TRUE(set.intersectsRange(15, 30));
    EXPECT_TRUE(set.intersectsRange(0, 11));
    EXPECT_FALSE(set.intersectsRange(20, 30));
    EXPECT_FALSE(set.intersectsRange(0, 10));
}

TEST(IntervalSetTest, CoveredBytesInRange)
{
    IntervalSet set;
    set.insert(0, 10);
    set.insert(20, 30);
    EXPECT_EQ(set.coveredBytesInRange(0, 30), 20u);
    EXPECT_EQ(set.coveredBytesInRange(5, 25), 10u);
    EXPECT_EQ(set.coveredBytesInRange(10, 20), 0u);
}

TEST(IntervalSetTest, RandomizedInsertEraseConsistency)
{
    // Property: the set always equals a reference bitmap.
    Rng rng(77);
    IntervalSet set;
    std::vector<bool> ref(512, false);
    for (int step = 0; step < 2000; ++step) {
        const Addr a = rng.nextBelow(512);
        const Addr b = a + 1 + rng.nextBelow(64);
        const Addr hi = std::min<Addr>(b, 512);
        if (rng.nextBool(0.5)) {
            set.insert(a, hi);
            for (Addr i = a; i < hi; ++i)
                ref[i] = true;
        } else {
            set.erase(a, hi);
            for (Addr i = a; i < hi; ++i)
                ref[i] = false;
        }
    }
    for (Addr i = 0; i < 512; ++i)
        ASSERT_EQ(set.contains(i), ref[i]) << "at " << i;
    Addr expect_total = 0;
    for (bool b : ref)
        expect_total += b ? 1 : 0;
    EXPECT_EQ(set.totalLength(), expect_total);
}

TEST(IntervalSetTest, CheckpointRoundTripReplacesContents)
{
    IntervalSet set;
    set.insert(10, 20);
    set.insert(40, 60);
    const auto bytes = test::ckptBytes(set);
    IntervalSet restored;
    restored.insert(0, 1000);  // Replaced on restore, not merged.
    ASSERT_TRUE(test::ckptRestore(bytes, restored));
    EXPECT_EQ(test::ckptBytes(restored), bytes);
    EXPECT_EQ(restored.count(), 2u);
    EXPECT_TRUE(restored.containsRange(10, 20));
    EXPECT_TRUE(restored.containsRange(40, 60));
    EXPECT_FALSE(restored.contains(30));
}

} // namespace
} // namespace emv
