/** @file Unit tests for the emv-ckpt-v1 checkpoint container. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/ckpt.hh"

namespace emv::ckpt {
namespace {

std::vector<std::uint8_t>
twoChunkContainer()
{
    Writer writer;
    Encoder a;
    a.u8(7);
    a.u32(0xdeadbeef);
    a.u64(0x0123456789abcdefull);
    a.f64(3.5);
    a.str("hello");
    writer.chunk("alpha", a);
    Encoder b;
    b.u64(42);
    writer.chunk("beta", b);
    return writer.serialize();
}

std::string
parseError(std::vector<std::uint8_t> bytes)
{
    Reader reader;
    EXPECT_FALSE(reader.parse(bytes.data(), bytes.size()));
    EXPECT_FALSE(reader.error().empty());
    return reader.error();
}

TEST(CkptTest, EncoderDecoderRoundTripAllTypes)
{
    Encoder enc;
    enc.u8(0xab);
    enc.u32(0x12345678);
    enc.u64(0xfedcba9876543210ull);
    enc.f64(-0.0);
    enc.f64(1.0 / 3.0);
    enc.str("");
    enc.str("emv\ncheckpoint");

    Decoder dec(enc.buffer().data(), enc.buffer().size());
    EXPECT_EQ(dec.u8(), 0xabu);
    EXPECT_EQ(dec.u32(), 0x12345678u);
    EXPECT_EQ(dec.u64(), 0xfedcba9876543210ull);
    // f64 travels as the IEEE bit pattern: -0.0 survives exactly.
    const double neg_zero = dec.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(dec.f64(), 1.0 / 3.0);
    EXPECT_EQ(dec.str(), "");
    EXPECT_EQ(dec.str(), "emv\ncheckpoint");
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.atEnd());
}

TEST(CkptTest, DecoderLatchesOnShortRead)
{
    Encoder enc;
    enc.u32(1);
    Decoder dec(enc.buffer().data(), enc.buffer().size());
    dec.u64();  // 8 bytes from a 4-byte payload.
    EXPECT_FALSE(dec.ok());
    EXPECT_FALSE(dec.error().empty());
    // Latched: every further read is a harmless zero.
    EXPECT_EQ(dec.u32(), 0u);
    EXPECT_EQ(dec.str(), "");
}

TEST(CkptTest, DecoderFailLatchesCallerError)
{
    Encoder enc;
    enc.u8(99);
    Decoder dec(enc.buffer().data(), enc.buffer().size());
    EXPECT_EQ(dec.u8(), 99u);
    dec.fail("mode out of range");
    EXPECT_FALSE(dec.ok());
    EXPECT_EQ(dec.error(), "mode out of range");
}

TEST(CkptTest, ContainerRoundTrip)
{
    const auto bytes = twoChunkContainer();
    Reader reader;
    ASSERT_TRUE(reader.parse(bytes.data(), bytes.size()))
        << reader.error();
    EXPECT_TRUE(reader.hasChunk("alpha"));
    EXPECT_TRUE(reader.hasChunk("beta"));
    EXPECT_FALSE(reader.hasChunk("gamma"));
    EXPECT_EQ(reader.tags(),
              (std::vector<std::string>{"alpha", "beta"}));

    Decoder a = reader.chunk("alpha");
    EXPECT_EQ(a.u8(), 7u);
    EXPECT_EQ(a.u32(), 0xdeadbeefu);
    EXPECT_EQ(a.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(a.f64(), 3.5);
    EXPECT_EQ(a.str(), "hello");
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(a.atEnd());

    Decoder b = reader.chunk("beta");
    EXPECT_EQ(b.u64(), 42u);
    EXPECT_TRUE(b.atEnd());
}

TEST(CkptTest, MissingChunkYieldsLatchedDecoder)
{
    const auto bytes = twoChunkContainer();
    Reader reader;
    ASSERT_TRUE(reader.parse(bytes.data(), bytes.size()));
    Decoder missing = reader.chunk("gamma");
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.u64(), 0u);
}

TEST(CkptTest, RejectsBadMagic)
{
    auto bytes = twoChunkContainer();
    bytes[0] ^= 0xff;
    const std::string error = parseError(bytes);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(CkptTest, RejectsWrongVersion)
{
    auto bytes = twoChunkContainer();
    bytes[8] = static_cast<std::uint8_t>(kVersion + 1);
    const std::string error = parseError(bytes);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CkptTest, RejectsCorruptPayloadCrc)
{
    auto bytes = twoChunkContainer();
    // Flip one bit in the last chunk's payload (the u64 just before
    // the trailing 4-byte CRC).
    bytes[bytes.size() - 5] ^= 0x01;
    const std::string error = parseError(bytes);
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(CkptTest, RejectsTruncation)
{
    const auto whole = twoChunkContainer();
    // Every proper prefix must fail cleanly — never read past the
    // buffer, never accept a partial container.
    for (std::size_t len : {std::size_t(0), std::size_t(4),
                            std::size_t(11), whole.size() / 2,
                            whole.size() - 1}) {
        std::vector<std::uint8_t> cut(whole.begin(),
                                      whole.begin() + len);
        Reader reader;
        EXPECT_FALSE(reader.parse(cut.data(), cut.size())) << len;
        EXPECT_FALSE(reader.error().empty());
    }
}

TEST(CkptTest, RejectsTrailingGarbage)
{
    auto bytes = twoChunkContainer();
    bytes.push_back(0x00);
    parseError(bytes);
}

TEST(CkptTest, RejectsDuplicateTag)
{
    // The Writer API can't produce duplicate tags (it overwrites),
    // so corrupt a well-formed two-chunk file: rename the
    // equal-length tag "bbbb" to "aaaa".  The CRC covers only the
    // payload, so the file is otherwise valid.
    Writer writer;
    Encoder a, b;
    a.u64(1);
    b.u64(2);
    writer.chunk("aaaa", a);
    writer.chunk("bbbb", b);
    auto bytes = writer.serialize();
    const std::string blob(bytes.begin(), bytes.end());
    const auto at = blob.find("bbbb");
    ASSERT_NE(at, std::string::npos);
    std::copy_n("aaaa", 4, bytes.begin() + static_cast<long>(at));
    const std::string error = parseError(bytes);
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(CkptTest, WriteFileIsAtomicAndLoadable)
{
    const std::string path =
        testing::TempDir() + "/ckpt_roundtrip.bin";
    Writer writer;
    Encoder enc;
    enc.u64(123);
    writer.chunk("only", enc);
    std::string error;
    ASSERT_TRUE(writer.writeFile(path, &error)) << error;
    // No leftover temp file after the rename.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    Reader reader;
    ASSERT_TRUE(reader.loadFile(path)) << reader.error();
    Decoder dec = reader.chunk("only");
    EXPECT_EQ(dec.u64(), 123u);
    std::remove(path.c_str());
}

TEST(CkptTest, LoadFileReportsMissingFile)
{
    Reader reader;
    EXPECT_FALSE(reader.loadFile(testing::TempDir() +
                                 "/no_such_checkpoint.bin"));
    EXPECT_FALSE(reader.error().empty());
}

TEST(CkptTest, Crc32MatchesKnownVector)
{
    // The IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
}

} // namespace
} // namespace emv::ckpt
