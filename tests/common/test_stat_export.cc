/** @file Registry, hierarchy and JSON/CSV export tests. */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/stat_registry.hh"
#include "common/stats.hh"

namespace emv {
namespace {

/** Registry entries for exactly the given groups, sorted by name. */
std::vector<const StatGroup *>
only(std::initializer_list<const StatGroup *> groups)
{
    return std::vector<const StatGroup *>(groups);
}

TEST(StatRegistryTest, GroupsAutoRegisterAndDeregister)
{
    const std::size_t before = StatRegistry::instance().size();
    {
        StatGroup g("transient");
        EXPECT_EQ(StatRegistry::instance().size(), before + 1);
    }
    EXPECT_EQ(StatRegistry::instance().size(), before);
}

TEST(StatRegistryTest, ParentPrefixFormsHierarchicalNames)
{
    StatGroup machine("machine");
    StatGroup mmu("mmu");
    mmu.setParent("machine");
    EXPECT_EQ(mmu.fullName(), "machine.mmu");

    StatGroup tlb("l1tlb4k");
    tlb.setParent(&mmu);
    EXPECT_EQ(tlb.fullName(), "machine.mmu.l1tlb4k");

    // Reparenting an ancestor renames the whole subtree.
    mmu.setParent("box0");
    EXPECT_EQ(tlb.fullName(), "box0.mmu.l1tlb4k");

    auto under = StatRegistry::instance().groupsUnder("box0.mmu");
    ASSERT_EQ(under.size(), 2u);
    EXPECT_EQ(under[0]->fullName(), "box0.mmu");
    EXPECT_EQ(under[1]->fullName(), "box0.mmu.l1tlb4k");
}

TEST(StatExportTest, JsonRoundTripsCountersAndScalars)
{
    StatGroup g("mmu");
    g.setParent("machine");
    g.counter("l1_misses") += 42;
    g.counter("walks") += 7;
    g.scalar("walk_cycles") += 123.5;

    std::ostringstream os;
    exportStatsJson(os, only({&g}));

    json::Value root;
    ASSERT_TRUE(json::parse(os.str(), root));
    const json::Value *schema = root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "emv-stats-v1");

    const json::Value *groups = root.find("groups");
    ASSERT_NE(groups, nullptr);
    ASSERT_TRUE(groups->isArray());
    ASSERT_EQ(groups->array.size(), 1u);

    const json::Value &entry = groups->array[0];
    EXPECT_EQ(entry.find("name")->string, "machine.mmu");

    const json::Value *counters = entry.find("counters");
    ASSERT_NE(counters, nullptr);
    // Parsed values must agree with the group's own accessors.
    EXPECT_EQ(counters->find("l1_misses")->number,
              static_cast<double>(g.counterValue("l1_misses")));
    EXPECT_EQ(counters->find("walks")->number,
              static_cast<double>(g.counterValue("walks")));
    EXPECT_DOUBLE_EQ(
        entry.find("scalars")->find("walk_cycles")->number,
        g.scalarValue("walk_cycles"));
}

TEST(StatExportTest, JsonCarriesDistributionSummary)
{
    StatGroup g("walkstats");
    auto &d = g.distribution("cycles_per_walk");
    for (double v : {10.0, 20.0, 30.0, 40.0})
        d.sample(v);

    std::ostringstream os;
    exportStatsJson(os, only({&g}));

    json::Value root;
    ASSERT_TRUE(json::parse(os.str(), root));
    const json::Value &entry = root.find("groups")->array[0];
    const json::Value *dist =
        entry.find("distributions")->find("cycles_per_walk");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->find("count")->number, 4.0);
    EXPECT_DOUBLE_EQ(dist->find("mean")->number, 25.0);
    EXPECT_EQ(dist->find("min")->number, 10.0);
    EXPECT_EQ(dist->find("max")->number, 40.0);
    EXPECT_GE(dist->find("p99")->number, dist->find("p50")->number);
}

TEST(StatExportTest, DuplicateGroupNamesBothExported)
{
    // Two PSCs both named "walkcache" must not collide: groups are
    // an array, not a name-keyed object.
    StatGroup a("walkcache");
    StatGroup b("walkcache");
    a.counter("hits") += 1;
    b.counter("hits") += 2;

    std::ostringstream os;
    exportStatsJson(os, only({&a, &b}));

    json::Value root;
    ASSERT_TRUE(json::parse(os.str(), root));
    EXPECT_EQ(root.find("groups")->array.size(), 2u);
}

TEST(StatExportTest, CsvHasHeaderAndOneRowPerStat)
{
    StatGroup g("os");
    g.counter("major_faults") += 3;
    g.scalar("resident_bytes") += 4096.0;

    std::ostringstream os;
    exportStatsCsv(os, only({&g}));
    std::istringstream lines(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "group,stat,kind,value");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "os,major_faults,counter,3");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line.substr(0, 26), "os,resident_bytes,scalar,4");
}

TEST(StatRegistryTest, VisitorsMayReenterTheRegistry)
{
    // Locking-contract regression (stat_registry.hh): visitAll()
    // snapshots the entry list and releases the registry lock before
    // visiting, so a visitor that re-enters the registry — creating
    // and destroying a StatGroup, or querying size() — must not
    // deadlock.  With a lock held across the callback this test
    // would hang (and the thread-safety analysis would reject the
    // code).
    struct ReentrantVisitor : StatVisitor
    {
        std::size_t counters = 0;

        void
        visitCounter(const StatGroup &, const std::string &,
                     const Counter &) override
        {
            ++counters;
            StatGroup transient("reentrant_transient");
            transient.counter("touch") += 1;
            EXPECT_GT(StatRegistry::instance().size(), 0u);
        }
        void visitScalar(const StatGroup &, const std::string &,
                         const Scalar &) override {}
        void visitDistribution(const StatGroup &, const std::string &,
                               const Distribution &) override {}
    };

    StatGroup g("reentry_host");
    g.counter("a") += 1;
    g.counter("b") += 2;
    ReentrantVisitor visitor;
    StatRegistry::instance().visitAll(visitor);
    EXPECT_GE(visitor.counters, 2u);
}

TEST(StatRegistryTest, ConcurrentRegistrationIsRaceFree)
{
    // The threads=N lifecycle: worker threads construct and destroy
    // whole StatGroup populations concurrently (machines are built
    // in-thread) while other threads read the registry.  Run under
    // the tsan preset this doubles as a data-race check on the
    // add/remove/groups()/size() paths.
    const std::size_t before = StatRegistry::instance().size();
    constexpr unsigned kThreads = 4;
    constexpr unsigned kRounds = 50;

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&go, t] {
            while (!go.load(std::memory_order_acquire)) {}
            for (unsigned round = 0; round < kRounds; ++round) {
                StatGroup parent(
                    "mt_parent" + std::to_string(t));
                StatGroup child("mt_child");
                child.setParent(&parent);
                child.counter("ops") += round;
                // Reads interleave with other threads' add/remove;
                // the snapshot just has to be internally
                // consistent, never a crash or a race.
                const auto groups =
                    StatRegistry::instance().groups();
                EXPECT_GE(groups.size(), 2u);
                EXPECT_GE(StatRegistry::instance().size(), 2u);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &worker : workers)
        worker.join();
    EXPECT_EQ(StatRegistry::instance().size(), before);
}

TEST(DistributionTest, PercentilesTrackPowerOfTwoBuckets)
{
    Distribution d;
    for (int i = 0; i < 99; ++i)
        d.sample(16.0);  // Bucket [16, 32).
    d.sample(1024.0);    // Far-tail outlier.

    const double p50 = d.percentile(0.5);
    EXPECT_GE(p50, 16.0);
    EXPECT_LT(p50, 32.0);
    // The outlier only surfaces at the very top.
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 1024.0);
    EXPECT_LT(d.percentile(0.9), 1024.0);
    // Clamped to observed extremes.
    EXPECT_GE(d.percentile(0.0), d.min());
    EXPECT_LE(d.percentile(1.0), d.max());
}

TEST(DistributionTest, DumpIncludesDistributionStats)
{
    StatGroup g("grp");
    auto &d = g.distribution("lat");
    d.sample(2.0);
    d.sample(6.0);

    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("grp.lat.count 2"), std::string::npos);
    EXPECT_NE(text.find("grp.lat.mean 4"), std::string::npos);
    EXPECT_NE(text.find("grp.lat.min 2"), std::string::npos);
    EXPECT_NE(text.find("grp.lat.max 6"), std::string::npos);
}

} // namespace
} // namespace emv
