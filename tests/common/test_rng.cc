/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "../test_support.hh"

namespace emv {
namespace {

TEST(RngTest, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull,
                                1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowZeroBound)
{
    Rng rng(7);
    EXPECT_EQ(rng.nextBelow(0), 0u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // All four values appear.
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BoolProbability)
{
    Rng rng(13);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(RngTest, UniformCoversRange)
{
    Rng rng(17);
    std::vector<int> buckets(16, 0);
    const int n = 32000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextBelow(16)];
    for (int count : buckets)
        EXPECT_NEAR(count, n / 16, n / 64);
}

TEST(RngTest, ZipfInBounds)
{
    Rng rng(19);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.nextZipf(1000, 0.99), 1000u);
}

TEST(RngTest, ZipfIsSkewed)
{
    Rng rng(23);
    const std::uint64_t n = 10000;
    std::uint64_t top_decile = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        top_decile += rng.nextZipf(n, 0.99) < n / 10 ? 1 : 0;
    // Zipf(0.99): the top 10% of ranks should get well over half
    // the draws; uniform would get 10%.
    EXPECT_GT(top_decile, static_cast<std::uint64_t>(draws) / 2);
}

TEST(RngTest, ZipfRankZeroMostPopular)
{
    Rng rng(29);
    std::uint64_t zero = 0, mid = 0;
    for (int i = 0; i < 50000; ++i) {
        const auto r = rng.nextZipf(1000, 0.99);
        zero += r == 0 ? 1 : 0;
        mid += r == 500 ? 1 : 0;
    }
    EXPECT_GT(zero, 10 * (mid + 1));
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic)
{
    std::uint64_t s1 = 42, s2 = 42;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(splitMix64(s1), splitMix64(s2));
}

TEST(RngTest, CheckpointRoundTripResumesStream)
{
    Rng a(123);
    for (int i = 0; i < 50; ++i)
        a.next();
    const auto bytes = test::ckptBytes(a);
    Rng b(999);  // Different seed: restore must overwrite it.
    ASSERT_TRUE(test::ckptRestore(bytes, b));
    // The restored stream continues exactly where the saved one
    // stood — the property deterministic resume rests on.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, CheckpointRejectsTruncatedState)
{
    Rng a(123);
    auto bytes = test::ckptBytes(a);
    bytes.pop_back();
    Rng b(7);
    EXPECT_FALSE(test::ckptRestore(bytes, b));
}

} // namespace
} // namespace emv
