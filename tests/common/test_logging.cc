/** @file
 * Tests for the logging layer (common/logging.hh): printf-style
 * formatting, quiet mode, and the abort/exit semantics of
 * panic/fatal/assert.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace emv {
namespace {

TEST(LoggingFormat, FormatsLikePrintf)
{
    EXPECT_EQ(detail::format("plain"), "plain");
    EXPECT_EQ(detail::format("%s=%d", "walks", 24), "walks=24");
    EXPECT_EQ(detail::format("%llx",
                             static_cast<unsigned long long>(0xabcd)),
              "abcd");
}

TEST(LoggingFormat, HandlesLongMessages)
{
    const std::string big(4096, 'x');
    EXPECT_EQ(detail::format("%s", big.c_str()), big);
}

TEST(LoggingQuiet, ToggleIsObservable)
{
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    setQuietLogging(false);
    EXPECT_FALSE(quietLogging());
    setQuietLogging(true);
}

TEST(LoggingQuiet, WarnAndInformSurviveBothModes)
{
    setQuietLogging(true);
    emv_warn("suppressed warning %d", 1);
    emv_inform("suppressed info");
    setQuietLogging(false);
    emv_warn("visible warning %d", 2);
    emv_inform("visible info");
    setQuietLogging(true);
    SUCCEED();  // Reporting must never terminate the process.
}

TEST(LoggingAssert, PassingAssertIsANoOp)
{
    emv_assert(2 + 2 == 4, "arithmetic broke");
    SUCCEED();
}

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, PanicAbortsWithMessage)
{
    EXPECT_DEATH(emv_panic("simulator bug %d", 7), "simulator bug 7");
}

TEST(LoggingDeathTest, FailedAssertAborts)
{
    EXPECT_DEATH(emv_assert(false, "invariant %s broke", "foo"),
                 "invariant foo broke");
}

TEST(LoggingDeathTest, FatalExitsCleanlyWithStatusOne)
{
    EXPECT_EXIT(emv_fatal("unusable configuration"),
                ::testing::ExitedWithCode(1),
                "unusable configuration");
}

} // namespace
} // namespace emv
