/** @file Unit tests for address types and alignment helpers. */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace emv {
namespace {

TEST(PageSizeTest, Bytes)
{
    EXPECT_EQ(pageBytes(PageSize::Size4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Size2M), 2u * 1024 * 1024);
    EXPECT_EQ(pageBytes(PageSize::Size1G), 1024ull * 1024 * 1024);
}

TEST(PageSizeTest, Shifts)
{
    EXPECT_EQ(pageShift(PageSize::Size4K), 12u);
    EXPECT_EQ(pageShift(PageSize::Size2M), 21u);
    EXPECT_EQ(pageShift(PageSize::Size1G), 30u);
}

TEST(PageSizeTest, Names)
{
    EXPECT_STREQ(pageSizeName(PageSize::Size4K), "4K");
    EXPECT_STREQ(pageSizeName(PageSize::Size2M), "2M");
    EXPECT_STREQ(pageSizeName(PageSize::Size1G), "1G");
}

TEST(PageSizeTest, OrderingMatchesSize)
{
    // std::min on PageSize must pick the smaller granule (the 2D
    // walker relies on this for combined TLB-entry sizes).
    EXPECT_LT(PageSize::Size4K, PageSize::Size2M);
    EXPECT_LT(PageSize::Size2M, PageSize::Size1G);
}

TEST(AlignTest, AlignDown)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(0xfff, 0x1000), 0u);
}

TEST(AlignTest, AlignUp)
{
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0, 0x1000), 0u);
}

TEST(AlignTest, IsAligned)
{
    EXPECT_TRUE(isAligned(0x200000, kPage2M));
    EXPECT_FALSE(isAligned(0x201000, kPage2M));
    EXPECT_TRUE(isAligned(0, kPage1G));
}

TEST(TypedAddrTest, DistinctTypes)
{
    static_assert(!std::is_convertible_v<GuestVirtAddr,
                                         GuestPhysAddr>);
    static_assert(!std::is_convertible_v<GuestPhysAddr,
                                         HostPhysAddr>);
    static_assert(!std::is_convertible_v<Addr, GuestVirtAddr>);
}

TEST(TypedAddrTest, Arithmetic)
{
    GuestVirtAddr va(0x1000);
    EXPECT_EQ((va + 0x234).value(), 0x1234u);
    EXPECT_EQ((va - 0x800).value(), 0x800u);
    EXPECT_EQ(GuestVirtAddr(0x3000) - va, 0x2000u);
}

TEST(TypedAddrTest, PageHelpers)
{
    GuestVirtAddr va(0x12345678);
    EXPECT_EQ(va.pageBase(PageSize::Size4K).value(), 0x12345000u);
    EXPECT_EQ(va.pageOffset(PageSize::Size4K), 0x678u);
    EXPECT_EQ(va.pageBase(PageSize::Size2M).value(), 0x12200000u);
}

TEST(TypedAddrTest, Comparisons)
{
    EXPECT_LT(GuestVirtAddr(1), GuestVirtAddr(2));
    EXPECT_EQ(HostPhysAddr(7), HostPhysAddr(7));
    EXPECT_NE(GuestPhysAddr(1), GuestPhysAddr(2));
}

TEST(TypedAddrTest, Hashable)
{
    std::hash<GuestVirtAddr> hasher;
    EXPECT_EQ(hasher(GuestVirtAddr(42)),
              hasher(GuestVirtAddr(42)));
}

TEST(HexAddrTest, Formats)
{
    EXPECT_EQ(hexAddr(0), "0x0");
    EXPECT_EQ(hexAddr(0xdeadbeef), "0xdeadbeef");
}

} // namespace
} // namespace emv
