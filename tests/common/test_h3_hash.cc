/** @file Unit tests for the H3 universal hash family. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/h3_hash.hh"
#include "common/rng.hh"

namespace emv {
namespace {

TEST(H3HashTest, DeterministicForSeed)
{
    H3Hash a(8, 42), b(8, 42);
    for (std::uint64_t key = 0; key < 100; ++key)
        EXPECT_EQ(a(key), b(key));
}

TEST(H3HashTest, ZeroKeyHashesToZero)
{
    // H3 is linear over GF(2): h(0) = 0 by construction.
    H3Hash h(8, 7);
    EXPECT_EQ(h(0), 0u);
}

TEST(H3HashTest, Linearity)
{
    // h(a ^ b) == h(a) ^ h(b) — the defining H3 property.
    H3Hash h(16, 99);
    std::uint64_t sm = 5;
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t a = splitMix64(sm);
        const std::uint64_t b = splitMix64(sm);
        EXPECT_EQ(h(a ^ b), h(a) ^ h(b));
    }
}

TEST(H3HashTest, OutputWithinWidth)
{
    for (unsigned bits : {1u, 4u, 8u, 16u, 31u}) {
        H3Hash h(bits, 3);
        std::uint64_t sm = 11;
        for (int i = 0; i < 200; ++i) {
            const std::uint32_t mask =
                bits == 32 ? 0xffffffffu : (1u << bits) - 1;
            EXPECT_EQ(h(splitMix64(sm)) & ~mask, 0u);
        }
    }
}

TEST(H3HashTest, SpreadsKeys)
{
    H3Hash h(8, 1234);
    std::set<std::uint32_t> outputs;
    for (std::uint64_t key = 1; key <= 512; ++key)
        outputs.insert(h(key));
    // 512 keys into 256 buckets: expect most buckets used.
    EXPECT_GT(outputs.size(), 180u);
}

TEST(H3FamilyTest, MembersDiffer)
{
    H3Family family(4, 8, 77);
    int collisions = 0;
    for (std::uint64_t key = 1; key <= 100; ++key) {
        if (family.hash(0, key) == family.hash(1, key))
            ++collisions;
    }
    EXPECT_LT(collisions, 10);
}

TEST(H3FamilyTest, SizeAndDeterminism)
{
    H3Family a(4, 8, 5), b(4, 8, 5);
    EXPECT_EQ(a.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(a.hash(i, 12345), b.hash(i, 12345));
}

} // namespace
} // namespace emv
