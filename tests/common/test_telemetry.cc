/**
 * @file
 * Tests for common/telemetry: LatencyHistogram bucketing/quantile
 * error bounds, merge/delta algebra, checkpoint round-trips, and
 * TelemetryRecorder window emission — including the resume contract
 * (a deserialized recorder continues with the next window index and
 * produces byte-identical subsequent windows under a deterministic
 * clock) and the delta-reconciliation invariant the emvsim metrics
 * stream relies on.
 */

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/ckpt.hh"
#include "common/json.hh"
#include "common/telemetry.hh"

using namespace emv;
using telemetry::LatencyHistogram;
using telemetry::TelemetryConfig;
using telemetry::TelemetryRecorder;

namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

} // namespace

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExact)
{
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v)
        h.record(v);
    for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
        EXPECT_EQ(LatencyHistogram::bucketLow(
                      LatencyHistogram::bucketIndex(v)), v);
        EXPECT_EQ(LatencyHistogram::bucketWidth(
                      LatencyHistogram::bucketIndex(v)), 1u);
    }
    EXPECT_EQ(h.count(), LatencyHistogram::kSubBuckets);
}

TEST(LatencyHistogram, BucketBoundsContainValue)
{
    for (std::uint64_t v :
         {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull, 4095ull,
          4096ull, 123456789ull, ~0ull >> 1}) {
        const unsigned index = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(index, LatencyHistogram::kBucketCount) << v;
        const std::uint64_t low = LatencyHistogram::bucketLow(index);
        const std::uint64_t width =
            LatencyHistogram::bucketWidth(index);
        EXPECT_LE(low, v) << v;
        EXPECT_LT(v - low, width) << v;
    }
}

TEST(LatencyHistogram, BucketIndexIsMonotone)
{
    unsigned prev = 0;
    for (std::uint64_t v = 0; v < 100000; ++v) {
        const unsigned index = LatencyHistogram::bucketIndex(v);
        EXPECT_GE(index, prev) << v;
        prev = index;
    }
}

TEST(LatencyHistogram, PercentileEdgeCases)
{
    LatencyHistogram empty;
    EXPECT_EQ(empty.percentile(0.5), 0.0);
    EXPECT_EQ(empty.mean(), 0.0);
    EXPECT_EQ(empty.min(), 0u);
    EXPECT_EQ(empty.max(), 0u);

    LatencyHistogram one;
    one.record(7);
    // A single small sample is exact at every quantile.
    EXPECT_EQ(one.percentile(0.0), 7.0);
    EXPECT_EQ(one.percentile(0.5), 7.0);
    EXPECT_EQ(one.percentile(1.0), 7.0);

    LatencyHistogram h;
    h.record(3);
    h.record(1000);
    EXPECT_EQ(h.percentile(-0.5), 3.0);    // p <= 0 -> min
    EXPECT_EQ(h.percentile(2.0), 1000.0);  // p >= 1 -> max
}

TEST(LatencyHistogram, QuantileRelativeErrorBounded)
{
    // One sample per histogram: any quantile must come back within
    // the documented 1/16 relative error (midpoint of a 1/16-octave
    // sub-bucket, clamped to [min, max]).
    for (std::uint64_t v :
         {17ull, 100ull, 999ull, 12345ull, 7777777ull}) {
        LatencyHistogram h;
        h.record(v);
        const double estimate = h.percentile(0.5);
        const double rel =
            std::abs(estimate - static_cast<double>(v)) /
            static_cast<double>(v);
        EXPECT_LE(rel, 1.0 / 16.0) << v;
    }
}

TEST(LatencyHistogram, MergeAddsSamples)
{
    LatencyHistogram a, b;
    for (int i = 0; i < 100; ++i)
        a.record(10);
    for (int i = 0; i < 50; ++i)
        b.record(5000);
    a.merge(b);
    EXPECT_EQ(a.count(), 150u);
    EXPECT_EQ(a.sum(), 100u * 10 + 50u * 5000);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 5000u);
    EXPECT_EQ(a.percentile(0.5), 10.0);
}

TEST(LatencyHistogram, DeltaIsBucketwiseDifference)
{
    LatencyHistogram cumulative;
    for (int i = 0; i < 10; ++i)
        cumulative.record(8);
    LatencyHistogram snapshot = cumulative;
    for (int i = 0; i < 5; ++i)
        cumulative.record(300);

    const LatencyHistogram window =
        LatencyHistogram::delta(cumulative, snapshot);
    EXPECT_EQ(window.count(), 5u);
    EXPECT_EQ(window.sum(), cumulative.sum() - snapshot.sum());
    // Only the 300-bucket grew in this window.
    EXPECT_EQ(window.bucketCount(LatencyHistogram::bucketIndex(300)),
              5u);
    EXPECT_EQ(window.bucketCount(LatencyHistogram::bucketIndex(8)),
              0u);
    // Delta min/max are bucket bounds, not exact extremes, but must
    // still bracket the true window values.
    EXPECT_LE(window.min(), 300u);
    EXPECT_GE(window.max(), 300u);
}

TEST(LatencyHistogram, CheckpointRoundTrip)
{
    LatencyHistogram h;
    for (std::uint64_t v : {1ull, 3ull, 17ull, 1000ull, 123456ull})
        for (int i = 0; i < 7; ++i)
            h.record(v);

    ckpt::Encoder enc;
    h.serialize(enc);
    ckpt::Decoder dec(enc.buffer().data(), enc.buffer().size());
    LatencyHistogram restored;
    ASSERT_TRUE(restored.deserialize(dec));
    ASSERT_TRUE(dec.ok()) << dec.error();

    EXPECT_EQ(restored.count(), h.count());
    EXPECT_EQ(restored.sum(), h.sum());
    EXPECT_EQ(restored.min(), h.min());
    EXPECT_EQ(restored.max(), h.max());
    for (unsigned i = 0; i < LatencyHistogram::kBucketCount; ++i)
        ASSERT_EQ(restored.bucketCount(i), h.bucketCount(i)) << i;
    EXPECT_EQ(restored.percentile(0.99), h.percentile(0.99));
}

TEST(LatencyHistogram, DeserializeRejectsGarbage)
{
    ckpt::Encoder enc;
    enc.u64(~0ull);  // Not a plausible histogram header.
    enc.u64(~0ull);
    ckpt::Decoder dec(enc.buffer().data(), enc.buffer().size());
    LatencyHistogram h;
    EXPECT_FALSE(h.deserialize(dec) && dec.ok());
}

// ---------------------------------------------------------------------
// TelemetryRecorder
// ---------------------------------------------------------------------

namespace {

/** A recorder over one counter/scalar/gauge plus a latency source,
 *  with a deterministic clock, writing to @p path. */
struct Rig
{
    std::uint64_t ops = 0;          //!< The counter source.
    double cycles = 0.0;            //!< The scalar source.
    LatencyHistogram latency;       //!< The cumulative histogram.
    std::uint64_t fakeNowNs = 0;    //!< Injected clock value.

    std::unique_ptr<TelemetryRecorder> recorder;

    explicit Rig(const std::string &path,
                 std::uint64_t window_ops = 100)
    {
        TelemetryConfig config;
        config.path = path;
        config.windowOps = window_ops;
        recorder = std::make_unique<TelemetryRecorder>(
            config, [this] { return fakeNowNs; });
        attachSources(*recorder);
    }

    void
    attachSources(TelemetryRecorder &rec)
    {
        rec.addCounter("ops", [this] { return ops; });
        rec.addScalar("cycles", [this] { return cycles; });
        rec.addGauge("fill", [] { return 0.25; });
        rec.setLatencySource(&latency);
        rec.setModeSource([] { return std::string("DD"); });
    }

    /** One simulated trace op: bump sources, tick the recorder. */
    void
    step(std::uint64_t lat)
    {
        ++ops;
        cycles += static_cast<double>(lat);
        latency.record(lat);
        recorder->onOp();
    }
};

} // namespace

TEST(TelemetryRecorder, EmitsValidatedWindows)
{
    const std::string path = tempPath("telemetry_windows.jsonl");
    Rig rig(path, /*window_ops=*/100);
    std::string error;
    ASSERT_TRUE(rig.recorder->openSink(&error)) << error;

    for (int i = 0; i < 250; ++i) {
        rig.fakeNowNs += 10;
        rig.step(i % 2 ? 4 : 40);
    }
    rig.recorder->event("downgrade", "DD->4K+VD");
    rig.recorder->finish();
    EXPECT_EQ(rig.recorder->windowsEmitted(), 3u);

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);
    std::uint64_t delta_sum = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        json::Value rec;
        ASSERT_TRUE(json::parse(lines[i], rec,
                                /*rejectDuplicateKeys=*/true))
            << lines[i];
        EXPECT_EQ(rec.find("schema")->string, "emv-metrics-v1");
        EXPECT_EQ(rec.find("window")->number,
                  static_cast<double>(i));
        const auto *deltas = rec.find("deltas");
        ASSERT_NE(deltas, nullptr);
        delta_sum += static_cast<std::uint64_t>(
            deltas->find("ops")->number);
        EXPECT_EQ(rec.find("mode")->string, "DD");
        EXPECT_DOUBLE_EQ(rec.find("gauges")->find("fill")->number,
                         0.25);
    }
    // Reconciliation: per-window deltas sum to the run-end value
    // of the source counter, with no ops lost at window seams.
    EXPECT_EQ(delta_sum, rig.ops);

    // The last record's cumulative tail must agree with the live
    // histogram exactly (same data, same estimator).
    json::Value last;
    ASSERT_TRUE(json::parse(lines.back(), last));
    const auto *cumulative = last.find("cumulative_latency");
    ASSERT_NE(cumulative, nullptr);
    EXPECT_DOUBLE_EQ(cumulative->find("p50")->number,
                     rig.latency.percentile(0.50));
    EXPECT_DOUBLE_EQ(cumulative->find("p99")->number,
                     rig.latency.percentile(0.99));
    EXPECT_DOUBLE_EQ(cumulative->find("p999")->number,
                     rig.latency.percentile(0.999));

    // The event landed in the final (partial) window.
    const auto *events = last.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 1u);
    EXPECT_EQ(events->array[0].find("kind")->string, "downgrade");
}

TEST(TelemetryRecorder, RebaseDropsHistory)
{
    const std::string path = tempPath("telemetry_rebase.jsonl");
    Rig rig(path, /*window_ops=*/50);
    ASSERT_TRUE(rig.recorder->openSink());

    // Warmup-style traffic, then a rebase: nothing of it may leak
    // into the windows emitted afterwards.
    rig.ops = 9999;
    rig.cycles = 1e9;
    rig.recorder->rebase();
    for (int i = 0; i < 50; ++i)
        rig.step(5);
    rig.recorder->finish();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    json::Value rec;
    ASSERT_TRUE(json::parse(lines[0], rec));
    EXPECT_EQ(rec.find("deltas")->find("ops")->number, 50.0);
}

TEST(TelemetryRecorder, ResumeContinuesByteIdentically)
{
    // Reference: one uninterrupted run, constant clock.
    const std::string ref_path = tempPath("telemetry_ref.jsonl");
    Rig ref(ref_path, /*window_ops=*/100);
    ASSERT_TRUE(ref.recorder->openSink());
    for (int i = 0; i < 350; ++i)
        ref.step(static_cast<std::uint64_t>(i % 37));
    ref.recorder->finish();
    const auto ref_lines = readLines(ref_path);
    ASSERT_EQ(ref_lines.size(), 4u);

    // Interrupted twin: same op stream, checkpointed mid-window-1
    // (op 150), restored into a fresh recorder, then resumed.
    const std::string pre_path = tempPath("telemetry_pre.jsonl");
    Rig twin(pre_path, /*window_ops=*/100);
    ASSERT_TRUE(twin.recorder->openSink());
    for (int i = 0; i < 150; ++i)
        twin.step(static_cast<std::uint64_t>(i % 37));

    ckpt::Encoder enc;
    twin.recorder->serialize(enc);

    const std::string post_path = tempPath("telemetry_post.jsonl");
    TelemetryConfig config;
    config.path = post_path;
    config.windowOps = 100;
    TelemetryRecorder resumed(config,
                              [&twin] { return twin.fakeNowNs; });
    twin.attachSources(resumed);
    ckpt::Decoder dec(enc.buffer().data(), enc.buffer().size());
    ASSERT_TRUE(resumed.deserialize(dec));
    ASSERT_TRUE(dec.ok()) << dec.error();
    EXPECT_EQ(resumed.opsObserved(), 150u);
    EXPECT_EQ(resumed.windowIndex(), 1u);
    ASSERT_TRUE(resumed.openSink());

    twin.recorder = nullptr;  // The half-written pre file stays put.
    for (int i = 150; i < 350; ++i) {
        ++twin.ops;
        twin.cycles += static_cast<double>(i % 37);
        twin.latency.record(static_cast<std::uint64_t>(i % 37));
        resumed.onOp();
    }
    resumed.finish();

    // The pre-crash file holds window 0; the resumed file holds
    // windows 1..3, each byte-identical to the reference stream.
    const auto pre_lines = readLines(pre_path);
    ASSERT_EQ(pre_lines.size(), 1u);
    EXPECT_EQ(pre_lines[0], ref_lines[0]);
    const auto post_lines = readLines(post_path);
    ASSERT_EQ(post_lines.size(), 3u);
    for (std::size_t i = 0; i < post_lines.size(); ++i)
        EXPECT_EQ(post_lines[i], ref_lines[i + 1]) << i;
}

TEST(TelemetryRecorder, DeserializeRejectsSourceMismatch)
{
    Rig rig(tempPath("telemetry_mismatch.jsonl"));
    ckpt::Encoder enc;
    rig.recorder->serialize(enc);

    TelemetryConfig config;
    config.path = tempPath("telemetry_mismatch2.jsonl");
    config.windowOps = 100;
    TelemetryRecorder other(config);
    other.addCounter("renamed", [] { return 0ull; });
    ckpt::Decoder dec(enc.buffer().data(), enc.buffer().size());
    EXPECT_FALSE(other.deserialize(dec) && dec.ok());
}

TEST(TelemetryRecorder, WindowSizeChangeAcrossResumeRejected)
{
    Rig rig(tempPath("telemetry_winsize.jsonl"), 100);
    ckpt::Encoder enc;
    rig.recorder->serialize(enc);

    TelemetryConfig config;
    config.path = tempPath("telemetry_winsize2.jsonl");
    config.windowOps = 200;  // Changed: would corrupt the series.
    TelemetryRecorder other(config);
    rig.attachSources(other);
    ckpt::Decoder dec(enc.buffer().data(), enc.buffer().size());
    EXPECT_FALSE(other.deserialize(dec) && dec.ok());
}

// ---------------------------------------------------------------------
// Concurrency (run these under the tsan preset; DESIGN.md §12)
// ---------------------------------------------------------------------

TEST(SharedLatencyHistogram, ConcurrentMergeLosesNoSamples)
{
    // The parallel-engine merge path: workers record into
    // thread-confined histograms and fold them into one shared
    // histogram at batch boundaries, while snapshot() readers
    // interleave.  Merges are atomic, so every snapshot must see a
    // whole number of batches, and the final count/sum must
    // reconcile exactly.
    telemetry::SharedLatencyHistogram shared;
    constexpr unsigned kThreads = 4;
    constexpr unsigned kBatches = 64;
    constexpr unsigned kPerBatch = 100;

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&shared, t] {
            for (unsigned b = 0; b < kBatches; ++b) {
                LatencyHistogram local;
                for (unsigned i = 0; i < kPerBatch; ++i)
                    local.record(t * 1000 + i);
                shared.merge(local);
                const LatencyHistogram snap = shared.snapshot();
                EXPECT_EQ(snap.count() % kPerBatch, 0u);
                EXPECT_LE(snap.count(),
                          std::uint64_t{kThreads} * kBatches *
                              kPerBatch);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    std::uint64_t expected_sum = 0;
    for (unsigned t = 0; t < kThreads; ++t)
        for (unsigned i = 0; i < kPerBatch; ++i)
            expected_sum += std::uint64_t{kBatches} * (t * 1000 + i);
    const LatencyHistogram final_snap = shared.snapshot();
    EXPECT_EQ(final_snap.count(),
              std::uint64_t{kThreads} * kBatches * kPerBatch);
    EXPECT_EQ(final_snap.sum(), expected_sum);
    EXPECT_EQ(final_snap.min(), 0u);
    EXPECT_EQ(final_snap.max(),
              std::uint64_t{(kThreads - 1) * 1000 + kPerBatch - 1});
}

TEST(TelemetryRecorder, ConcurrentTicksEmitOrderedUntornWindows)
{
    // N threads tick one shared recorder (the threads=N emvsim
    // configuration).  Every JSONL line must still be a complete
    // record (no torn writes), window indices must be strictly
    // sequential, and the per-window deltas of the atomic op
    // counter must reconcile with the total.
    const std::string path = tempPath("telemetry_mt.jsonl");
    TelemetryConfig config;
    config.path = path;
    config.windowOps = 1000;
    std::atomic<std::uint64_t> ops{0};
    TelemetryRecorder rec(config);
    rec.addCounter("ops", [&ops] {
        return ops.load(std::memory_order_relaxed);
    });
    rec.setModeSource([] { return std::string("parallel"); });
    ASSERT_TRUE(rec.openSink());

    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kOpsPerThread = 5000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&rec, &ops, t] {
            rec.event("shard", std::to_string(t));
            for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
                ops.fetch_add(1, std::memory_order_relaxed);
                rec.onOp();
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    rec.finish();

    const std::uint64_t total = kThreads * kOpsPerThread;
    EXPECT_EQ(rec.opsObserved(), total);
    // The op count is window-aligned, so finish() has no partial
    // window to add.
    ASSERT_EQ(rec.windowsEmitted(), total / config.windowOps);

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), total / config.windowOps);
    std::uint64_t delta_sum = 0;
    std::size_t events_seen = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        json::Value record;
        // A torn or interleaved line would fail to parse (or parse
        // with duplicate keys).
        ASSERT_TRUE(json::parse(lines[i], record,
                                /*rejectDuplicateKeys=*/true))
            << lines[i];
        EXPECT_EQ(record.find("schema")->string, "emv-metrics-v1");
        EXPECT_EQ(record.find("window")->number,
                  static_cast<double>(i));
        EXPECT_EQ(record.find("op_start")->number,
                  static_cast<double>(i * config.windowOps));
        EXPECT_EQ(record.find("op_end")->number,
                  static_cast<double>((i + 1) * config.windowOps));
        delta_sum += static_cast<std::uint64_t>(
            record.find("deltas")->find("ops")->number);
        events_seen += record.find("events")->array.size();
    }
    // Lock ordering inside onOp() guarantees every fetch_add that
    // precedes the closing tick is visible to the close, so the
    // deltas reconcile exactly — no ops lost at window seams.
    EXPECT_EQ(delta_sum, total);
    // Each thread's one event landed in exactly one window.
    EXPECT_EQ(events_seen, kThreads);
}
