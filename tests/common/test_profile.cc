/** @file
 * Tests for the self-profiling layer (common/profile.hh): RAII
 * scopes, enable gating, phase accounting, and the report format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/profile.hh"

namespace emv::prof {
namespace {

class ProfileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setEnabled(false);
        reset();
    }

    void
    TearDown() override
    {
        setEnabled(false);
        reset();
    }
};

TEST_F(ProfileTest, DisabledScopeRecordsNothing)
{
    {
        Scope timer(Phase::Translate);
    }
    EXPECT_EQ(phaseRecord(Phase::Translate).calls, 0u);
    EXPECT_FALSE(enabled());
}

TEST_F(ProfileTest, EnabledScopeCountsCallsAndTime)
{
    setEnabled(true);
    for (int i = 0; i < 3; ++i)
        Scope timer(Phase::FaultService);
    const auto rec = phaseRecord(Phase::FaultService);
    EXPECT_EQ(rec.calls, 3u);
    // steady_clock deltas are non-negative; ns may round to zero.
    EXPECT_EQ(phaseRecord(Phase::Translate).calls, 0u);
}

TEST_F(ProfileTest, ResetZeroesRecords)
{
    setEnabled(true);
    {
        Scope timer(Phase::Balloon);
    }
    ASSERT_EQ(phaseRecord(Phase::Balloon).calls, 1u);
    reset();
    EXPECT_EQ(phaseRecord(Phase::Balloon).calls, 0u);
}

TEST_F(ProfileTest, EveryPhaseHasAName)
{
    for (unsigned p = 0;
         p < static_cast<unsigned>(Phase::NumPhases); ++p) {
        const char *name = phaseName(static_cast<Phase>(p));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

TEST_F(ProfileTest, ReportListsPhasesThatRan)
{
    setEnabled(true);
    {
        Scope timer(Phase::Translate);
    }
    std::ostringstream os;
    report(os);
    EXPECT_NE(os.str().find(phaseName(Phase::Translate)),
              std::string::npos);
    EXPECT_EQ(os.str().find(phaseName(Phase::Balloon)),
              std::string::npos);
}

TEST_F(ProfileTest, ReportExplainsWhenNothingRan)
{
    std::ostringstream os;
    report(os);
    EXPECT_FALSE(os.str().empty());
}

} // namespace
} // namespace emv::prof
