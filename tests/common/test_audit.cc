/** @file
 * Tests for the runtime audit framework (common/audit.hh): macro
 * gating, counter accounting, fail-fast escalation, and the
 * IntervalSet structural invariant it powers.
 */

#include <gtest/gtest.h>

#include "common/audit.hh"
#include "common/intervals.hh"
#include "common/logging.hh"

namespace emv {
namespace {

class AuditTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setQuietLogging(true);  // Failure records go through warn().
        audit::setFailFast(false);
        audit::setEnabled(true);
        audit::resetCounters();
    }

    void
    TearDown() override
    {
        audit::setEnabled(false);
        audit::setFailFast(false);
        audit::resetCounters();
    }
};

TEST_F(AuditTest, DisabledChecksCostNothingAndSkipTheCondition)
{
    audit::setEnabled(false);
    ASSERT_FALSE(audit::enabled());
    bool evaluated = false;
    EMV_CHECK([&] { evaluated = true; return false; }(),
              "must never fire while disabled");
    EXPECT_FALSE(evaluated);
    EXPECT_EQ(audit::checkCount(), 0u);
    EXPECT_EQ(audit::failureCount(), 0u);
}

TEST_F(AuditTest, PassingCheckCountsButDoesNotFail)
{
    EMV_CHECK(1 + 1 == 2, "arithmetic broke");
    EXPECT_EQ(audit::checkCount(), 1u);
    EXPECT_EQ(audit::failureCount(), 0u);
}

TEST_F(AuditTest, FailingCheckIsCountedAndExecutionContinues)
{
    EMV_CHECK(false, "deliberate failure %d", 42);
    EXPECT_EQ(audit::checkCount(), 1u);
    EXPECT_EQ(audit::failureCount(), 1u);
    // A failing check must not abort: we got here.
}

TEST_F(AuditTest, FailingInvariantIsCounted)
{
    EMV_INVARIANT(false, "structure is broken at %s",
                  hexAddr(0x1000).c_str());
    EXPECT_EQ(audit::failureCount(), 1u);
}

TEST_F(AuditTest, MismatchesAreCountedSeparately)
{
    audit::reportMismatch("fast path disagrees with reference");
    EXPECT_EQ(audit::mismatchCount(), 1u);
    EXPECT_EQ(audit::failureCount(), 0u);
}

TEST_F(AuditTest, ResetCountersZeroesEverything)
{
    EMV_CHECK(false, "fail once");
    audit::reportMismatch("diverged");
    audit::resetCounters();
    EXPECT_EQ(audit::checkCount(), 0u);
    EXPECT_EQ(audit::failureCount(), 0u);
    EXPECT_EQ(audit::mismatchCount(), 0u);
}

TEST_F(AuditTest, StatsGroupUsesTheDottedNamingConvention)
{
    EXPECT_EQ(audit::stats().name(), "audit");
    // Counter values surface through the group the registry exports.
    EMV_CHECK(true, "counted");
    EXPECT_EQ(audit::stats().counterValue("checks"),
              audit::checkCount());
}

using AuditDeathTest = AuditTest;

TEST_F(AuditDeathTest, FailFastEscalatesToPanic)
{
    audit::setFailFast(true);
    EXPECT_TRUE(audit::failFast());
    EXPECT_DEATH(EMV_CHECK(false, "stop the presses"),
                 "stop the presses");
}

TEST_F(AuditDeathTest, FailFastEscalatesMismatches)
{
    audit::setFailFast(true);
    EXPECT_DEATH(audit::reportMismatch("diverged"), "diverged");
}

TEST_F(AuditTest, IntervalMutationsRunTheStructuralInvariant)
{
    IntervalSet set;
    const auto before = audit::checkCount();
    set.insert(0x1000, 0x2000);
    set.insert(0x3000, 0x4000);
    set.insert(0x2000, 0x3000);  // Coalesces all three.
    set.erase(0x1800, 0x2800);   // Splits into two.
    EXPECT_GT(audit::checkCount(), before);
    EXPECT_EQ(audit::failureCount(), 0u);
    EXPECT_EQ(set.count(), 2u);
}

TEST_F(AuditTest, IntervalInvariantPassesOnAdjacentDisjointRanges)
{
    IntervalSet set;
    set.insert(0, 0x1000);
    set.erase(0x400, 0x800);
    set.auditInvariants("test_set");
    EXPECT_EQ(audit::failureCount(), 0u);
    EXPECT_TRUE(set.contains(0x200));
    EXPECT_FALSE(set.contains(0x400));
}

} // namespace
} // namespace emv
