/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.hh"
#include "../test_support.hh"

namespace emv {
namespace {

TEST(CounterTest, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarTest, AccumulateAndSet)
{
    Scalar s;
    s += 1.5;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(DistributionTest, Moments)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(DistributionTest, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(DistributionTest, PercentileEmptyIsZero)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 0.0);
}

TEST(DistributionTest, PercentileSingleSampleClampsExact)
{
    // One sample: every quantile clamps to the observed value, so
    // the octave-midpoint approximation cannot surface at all.
    Distribution d;
    d.sample(100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
}

TEST(DistributionTest, PercentileClampsOutOfRangeP)
{
    Distribution d;
    for (double v : {2.0, 8.0, 32.0})
        d.sample(v);
    // p is clamped to [0, 1]; the extremes clamp to min and max.
    EXPECT_DOUBLE_EQ(d.percentile(-1.0), d.percentile(0.0));
    EXPECT_DOUBLE_EQ(d.percentile(2.0), d.percentile(1.0));
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 32.0);
    EXPECT_GE(d.percentile(0.0), 2.0);
}

TEST(DistributionTest, PercentileWithinDocumentedOctaveBound)
{
    // The documented contract: the estimate is within a factor of 2
    // of a true sample value (one-octave buckets, geometric
    // midpoint representative).
    Distribution d;
    for (double v : {3.0, 5.0, 17.0, 33.0, 1000.0, 1025.0})
        d.sample(v);
    for (double p : {0.1, 0.5, 0.9, 0.99}) {
        const double estimate = d.percentile(p);
        EXPECT_GE(estimate, d.min());
        EXPECT_LE(estimate, d.max());
        // Some true sample lies within [estimate/2, estimate*2].
        bool bracketed = false;
        for (double v : {3.0, 5.0, 17.0, 33.0, 1000.0, 1025.0})
            bracketed |= v >= estimate / 2 && v <= estimate * 2;
        EXPECT_TRUE(bracketed) << "p=" << p << " est=" << estimate;
    }
}

TEST(DistributionTest, PercentileSubUnitSamplesUseBucketZero)
{
    // Everything below 1.0 lands in bucket 0 (representative 0.5,
    // clamped to the observed range).
    Distribution d;
    d.sample(0.1);
    d.sample(0.2);
    d.sample(0.9);
    const double p50 = d.percentile(0.5);
    EXPECT_GE(p50, 0.1);
    EXPECT_LE(p50, 0.9);
}

TEST(StatGroupTest, StableReferences)
{
    StatGroup group("g");
    Counter &a = group.counter("a");
    // Adding more counters must not invalidate earlier references
    // (the MMU binds counter pointers at construction).
    for (int i = 0; i < 100; ++i)
        group.counter("x" + std::to_string(i));
    ++a;
    EXPECT_EQ(group.counterValue("a"), 1u);
}

TEST(StatGroupTest, UnknownReadsZero)
{
    StatGroup group("g");
    EXPECT_EQ(group.counterValue("nope"), 0u);
    EXPECT_DOUBLE_EQ(group.scalarValue("nope"), 0.0);
}

TEST(StatGroupTest, ResetAll)
{
    StatGroup group("g");
    ++group.counter("c");
    group.scalar("s") += 2.0;
    group.distribution("d").sample(1.0);
    group.resetAll();
    EXPECT_EQ(group.counterValue("c"), 0u);
    EXPECT_DOUBLE_EQ(group.scalarValue("s"), 0.0);
    EXPECT_EQ(group.distribution("d").count(), 0u);
}

TEST(StatGroupTest, DumpFormat)
{
    StatGroup group("mmu");
    group.counter("walks") += 3;
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("mmu.walks 3"), std::string::npos);
}

TEST(Confidence95Test, EmptyAndSingle)
{
    EXPECT_DOUBLE_EQ(confidence95({}).mean, 0.0);
    auto ci = confidence95({5.0});
    EXPECT_DOUBLE_EQ(ci.mean, 5.0);
    EXPECT_DOUBLE_EQ(ci.halfWidth, 0.0);
}

TEST(Confidence95Test, ConstantSamplesHaveZeroWidth)
{
    auto ci = confidence95({3.0, 3.0, 3.0, 3.0});
    EXPECT_DOUBLE_EQ(ci.mean, 3.0);
    EXPECT_DOUBLE_EQ(ci.halfWidth, 0.0);
}

TEST(Confidence95Test, KnownTwoSample)
{
    // mean 1.5, sd = sqrt(0.5), sem = 0.5, t(1 df) = 12.706.
    auto ci = confidence95({1.0, 2.0});
    EXPECT_DOUBLE_EQ(ci.mean, 1.5);
    EXPECT_NEAR(ci.halfWidth, 12.706 * 0.5, 1e-6);
}

TEST(Confidence95Test, WidthShrinksWithSamples)
{
    std::vector<double> few, many;
    for (int i = 0; i < 5; ++i)
        few.push_back(i % 2 ? 1.0 : 2.0);
    for (int i = 0; i < 30; ++i)
        many.push_back(i % 2 ? 1.0 : 2.0);
    EXPECT_GT(confidence95(few).halfWidth,
              confidence95(many).halfWidth);
}

TEST(DistributionTest, CheckpointRoundTrip)
{
    Distribution d;
    for (double v : {2.0, 4.0, 9.0})
        d.sample(v);
    const auto bytes = test::ckptBytes(d);
    Distribution r;
    ASSERT_TRUE(test::ckptRestore(bytes, r));
    EXPECT_EQ(test::ckptBytes(r), bytes);
    EXPECT_EQ(r.count(), 3u);
    EXPECT_DOUBLE_EQ(r.mean(), 5.0);
    EXPECT_DOUBLE_EQ(r.min(), 2.0);
    EXPECT_DOUBLE_EQ(r.max(), 9.0);
}

TEST(StatGroupTest, CheckpointRoundTripRebuildsByName)
{
    StatGroup g("ckpt_src");
    g.counter("hits") += 7;
    g.scalar("cycles") += 1.25;
    g.distribution("lat").sample(3.0);
    const auto bytes = test::ckptBytes(g);
    StatGroup r("ckpt_src");
    ASSERT_TRUE(test::ckptRestore(bytes, r));
    EXPECT_EQ(test::ckptBytes(r), bytes);
    EXPECT_EQ(r.counterValue("hits"), 7u);
    EXPECT_DOUBLE_EQ(r.scalarValue("cycles"), 1.25);
    EXPECT_EQ(r.distribution("lat").count(), 1u);
}

TEST(StatGroupTest, CheckpointRestoreResetsStaleStats)
{
    StatGroup g("ckpt_reset");
    g.counter("hits") += 3;
    StatGroup r("ckpt_reset");
    Counter &stale = r.counter("stale");
    stale += 99;
    ASSERT_TRUE(test::ckptRestore(test::ckptBytes(g), r));
    // Restore resets the whole group before rebuilding by name, and
    // previously-bound references stay valid (node stability).
    EXPECT_EQ(r.counterValue("hits"), 3u);
    EXPECT_EQ(stale.value(), 0u);
}

} // namespace
} // namespace emv
