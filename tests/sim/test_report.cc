/** @file Unit tests for report formatting. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"

namespace emv::sim {
namespace {

TEST(TableTest, AlignsColumns)
{
    Table table({"a", "bbbb"});
    table.addRow({"xxxxxx", "y"});
    table.addRow({"z", "w"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Every line is equally wide (trailing pads included).
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    const auto width = line.size();
    while (std::getline(is, line))
        EXPECT_EQ(line.size(), width);
}

TEST(TableTest, RowCount)
{
    Table table({"a"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TableDeathTest, WrongArityPanics)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only one"}), "cells");
}

TEST(FormatTest, Pct)
{
    EXPECT_EQ(pct(0.0), "0.0%");
    EXPECT_EQ(pct(0.1234), "12.3%");
    EXPECT_EQ(pct(1.5), "150.0%");
}

TEST(FormatTest, Fmt)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(FormatTest, BytesStr)
{
    EXPECT_EQ(bytesStr(512), "512 B");
    EXPECT_EQ(bytesStr(2048), "2.00 KB");
    EXPECT_EQ(bytesStr(3 * 1024 * 1024), "3.00 MB");
    EXPECT_EQ(bytesStr(1536ull << 20), "1.50 GB");
}

} // namespace
} // namespace emv::sim
