/** @file
 * End-to-end checkpoint/restore tests: a run checkpointed midway
 * and resumed in a fresh process-equivalent Machine must report
 * bit-identical measured results to the uninterrupted run, for
 * every translation mode; damaged or mismatched checkpoints must
 * fail with structured errors, never undefined behaviour.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/experiment.hh"

namespace emv::sim {
namespace {

constexpr double kScale = 0.02;
constexpr std::uint64_t kWarmup = 20000;
constexpr std::uint64_t kMeasure = 60000;

RunParams
smallParams()
{
    RunParams params;
    params.warmupOps = kWarmup;
    params.measureOps = kMeasure;
    params.scale = kScale;
    params.seed = 42;
    return params;
}

/** A workload + machine pair built the way emvsim builds one. */
struct Cell
{
    std::unique_ptr<workload::Workload> wl;
    std::unique_ptr<Machine> machine;
};

Cell
buildCell(const std::string &label)
{
    auto spec = specFromLabel(label);
    EXPECT_TRUE(spec.has_value()) << label;
    Cell cell;
    cell.wl = workload::makeWorkload(workload::WorkloadKind::Gups,
                                     42, kScale);
    cell.machine = std::make_unique<Machine>(
        makeMachineConfig(*spec, smallParams()), *cell.wl);
    return cell;
}

CheckpointMeta
metaFor(const std::string &label, std::uint64_t measured_done)
{
    CheckpointMeta meta;
    meta.workload = "gups";
    meta.configLabel = label;
    meta.scale = kScale;
    meta.seed = 42;
    meta.warmupOps = kWarmup;
    meta.measureOps = kMeasure;
    meta.warmupDone = kWarmup;
    meta.measuredOps = measured_done;
    return meta;
}

std::string
tempCkptPath(const std::string &stem)
{
    std::string name = stem;
    for (char &c : name) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return (std::filesystem::path(testing::TempDir()) /
            ("test-" + name + ".emvckpt"))
        .string();
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Field-by-field exact equality: doubles must match bit-for-bit,
 *  which is the whole point of deterministic resume. */
void
expectSameResult(const RunResult &got, const RunResult &want)
{
    EXPECT_EQ(got.accessOps, want.accessOps);
    EXPECT_EQ(got.remapOps, want.remapOps);
    EXPECT_EQ(got.baseCycles, want.baseCycles);
    EXPECT_EQ(got.translationCycles, want.translationCycles);
    EXPECT_EQ(got.faultCycles, want.faultCycles);
    EXPECT_EQ(got.vmExitCycles, want.vmExitCycles);
    EXPECT_EQ(got.shootdownCycles, want.shootdownCycles);
    EXPECT_EQ(got.l1Misses, want.l1Misses);
    EXPECT_EQ(got.l2Misses, want.l2Misses);
    EXPECT_EQ(got.walks, want.walks);
    EXPECT_EQ(got.guestFaults, want.guestFaults);
    EXPECT_EQ(got.ddFastHits, want.ddFastHits);
    EXPECT_EQ(got.dsFastHits, want.dsFastHits);
    EXPECT_EQ(got.completed, want.completed);
    EXPECT_EQ(got.cyclesPerWalk, want.cyclesPerWalk);
    EXPECT_EQ(got.fractionBoth, want.fractionBoth);
    EXPECT_EQ(got.fractionVmmOnly, want.fractionVmmOnly);
    EXPECT_EQ(got.fractionGuestOnly, want.fractionGuestOnly);
}

/** One parameter per translation mode the paper evaluates. */
class CheckpointModeTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CheckpointModeTest, MidwayCheckpointMatchesUninterrupted)
{
    const std::string label = GetParam();

    // Control: warm up, measure in one uninterrupted interval.
    auto control = buildCell(label);
    control.machine->run(kWarmup);
    control.machine->resetStats();
    control.machine->run(kMeasure);
    const RunResult want = control.machine->measuredResult();
    ASSERT_TRUE(want.completed);

    // Interrupted run: checkpoint halfway through measurement.
    auto first = buildCell(label);
    first.machine->run(kWarmup);
    first.machine->resetStats();
    first.machine->run(kMeasure / 2);
    const std::string path = tempCkptPath(label);
    std::string error;
    ASSERT_TRUE(saveCheckpoint(path, metaFor(label, kMeasure / 2),
                               *first.machine, error))
        << error;

    // Resume: fresh workload + machine from the same identity, then
    // overwrite with the checkpoint and finish the measurement.
    LoadedCheckpoint loaded;
    ASSERT_TRUE(loadCheckpoint(path, loaded, error)) << error;
    EXPECT_EQ(loaded.meta.configLabel, label);
    EXPECT_EQ(loaded.meta.warmupDone, kWarmup);
    EXPECT_EQ(loaded.meta.measuredOps, kMeasure / 2);
    auto resumed = buildCell(label);
    ASSERT_TRUE(restoreMachine(loaded, *resumed.machine, error))
        << error;
    resumed.machine->run(kMeasure - loaded.meta.measuredOps);
    expectSameResult(resumed.machine->measuredResult(), want);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CheckpointModeTest,
    ::testing::Values(std::string("4K+4K"), std::string("DD"),
                      std::string("4K+VD"), std::string("4K+GD"),
                      std::string("DS")),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

class CheckpointFileTest : public ::testing::Test
{
  protected:
    /** Write a valid checkpoint and return its path. */
    std::string
    makeCheckpoint(const std::string &label, const char *stem)
    {
        auto cell = buildCell(label);
        cell.machine->run(kWarmup);
        cell.machine->resetStats();
        cell.machine->run(kMeasure / 2);
        const std::string path = tempCkptPath(stem);
        std::string error;
        EXPECT_TRUE(saveCheckpoint(path,
                                   metaFor(label, kMeasure / 2),
                                   *cell.machine, error))
            << error;
        return path;
    }
};

TEST_F(CheckpointFileTest, CorruptPayloadIsRejectedWithCrcError)
{
    const std::string path = makeCheckpoint("4K+4K", "corrupt");
    auto bytes = slurp(path);
    ASSERT_GT(bytes.size(), 16u);
    bytes[bytes.size() - 5] ^= 0x40;  // Last chunk's payload tail.
    spit(path, bytes);

    LoadedCheckpoint loaded;
    std::string error;
    EXPECT_FALSE(loadCheckpoint(path, loaded, error));
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, TruncatedFileIsRejected)
{
    const std::string path = makeCheckpoint("4K+4K", "truncated");
    auto bytes = slurp(path);
    bytes.resize(bytes.size() / 2);
    spit(path, bytes);

    LoadedCheckpoint loaded;
    std::string error;
    EXPECT_FALSE(loadCheckpoint(path, loaded, error));
    EXPECT_FALSE(error.empty());
}

TEST_F(CheckpointFileTest, WrongVersionIsRejected)
{
    const std::string path = makeCheckpoint("4K+4K", "version");
    auto bytes = slurp(path);
    ASSERT_GT(bytes.size(), 12u);
    bytes[8] = static_cast<char>(ckpt::kVersion + 1);
    spit(path, bytes);

    LoadedCheckpoint loaded;
    std::string error;
    EXPECT_FALSE(loadCheckpoint(path, loaded, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, BadMagicIsRejected)
{
    const std::string path = makeCheckpoint("4K+4K", "magic");
    auto bytes = slurp(path);
    bytes[0] ^= 0xff;
    spit(path, bytes);

    LoadedCheckpoint loaded;
    std::string error;
    EXPECT_FALSE(loadCheckpoint(path, loaded, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, MissingFileIsRejected)
{
    LoadedCheckpoint loaded;
    std::string error;
    EXPECT_FALSE(loadCheckpoint(tempCkptPath("no-such-file"),
                                loaded, error));
    EXPECT_FALSE(error.empty());
}

TEST_F(CheckpointFileTest, CrossConfigRestoreFailsStructured)
{
    // A DS checkpoint into a machine built for DD: the layer shapes
    // disagree, and restore must say so instead of half-applying.
    const std::string path = makeCheckpoint("DS", "cross");
    LoadedCheckpoint loaded;
    std::string error;
    ASSERT_TRUE(loadCheckpoint(path, loaded, error)) << error;

    auto other = buildCell("DD");
    EXPECT_FALSE(restoreMachine(loaded, *other.machine, error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace emv::sim
