/** @file Unit tests for experiment descriptors and label parsing. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/experiment.hh"

namespace emv::sim {
namespace {

using core::Mode;

TEST(SpecFromLabelTest, NativeSizes)
{
    auto spec = specFromLabel("4K");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->mode, Mode::Native);
    EXPECT_EQ(spec->guestPageSize, PageSize::Size4K);

    EXPECT_EQ(specFromLabel("2M")->guestPageSize, PageSize::Size2M);
    EXPECT_EQ(specFromLabel("1G")->guestPageSize, PageSize::Size1G);
}

TEST(SpecFromLabelTest, VirtualizedCombos)
{
    auto spec = specFromLabel("2M+1G");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->mode, Mode::BaseVirtualized);
    EXPECT_EQ(spec->guestPageSize, PageSize::Size2M);
    EXPECT_EQ(spec->vmmPageSize, PageSize::Size1G);
}

TEST(SpecFromLabelTest, ProposedModes)
{
    EXPECT_EQ(specFromLabel("DS")->mode, Mode::NativeDirect);
    EXPECT_EQ(specFromLabel("DD")->mode, Mode::DualDirect);
    EXPECT_EQ(specFromLabel("4K+VD")->mode, Mode::VmmDirect);
    EXPECT_EQ(specFromLabel("4K+GD")->mode, Mode::GuestDirect);
    EXPECT_EQ(specFromLabel("2M+VD")->guestPageSize,
              PageSize::Size2M);
}

TEST(SpecFromLabelTest, ThpAndShadow)
{
    EXPECT_TRUE(specFromLabel("THP")->thp);
    EXPECT_TRUE(specFromLabel("THP+2M")->thp);
    EXPECT_EQ(specFromLabel("THP+2M")->vmmPageSize,
              PageSize::Size2M);
    auto sh = specFromLabel("sh4K");
    ASSERT_TRUE(sh.has_value());
    EXPECT_TRUE(sh->shadow);
    EXPECT_EQ(specFromLabel("sh2M")->guestPageSize,
              PageSize::Size2M);
}

TEST(SpecFromLabelTest, RejectsGarbage)
{
    EXPECT_FALSE(specFromLabel("5K").has_value());
    EXPECT_FALSE(specFromLabel("4K+9G").has_value());
    EXPECT_FALSE(specFromLabel("").has_value());
    EXPECT_FALSE(specFromLabel("XX+VD").has_value());
}

TEST(FigureConfigTest, Figure11HasThirteenBars)
{
    auto configs = figure11Configs();
    EXPECT_EQ(configs.size(), 13u);
    // The paper's key bars are present.
    bool has_dd = false, has_vd = false, has_gd = false,
         has_ds = false;
    for (const auto &spec : configs) {
        has_dd |= spec.label == "DD";
        has_vd |= spec.label == "4K+VD";
        has_gd |= spec.label == "4K+GD";
        has_ds |= spec.label == "DS";
    }
    EXPECT_TRUE(has_dd && has_vd && has_gd && has_ds);
}

TEST(FigureConfigTest, Figure12UsesThp)
{
    auto configs = figure12Configs();
    bool any_thp = false;
    for (const auto &spec : configs)
        any_thp |= spec.thp;
    EXPECT_TRUE(any_thp);
}

TEST(FigureConfigTest, Figure1IsPreviewSubset)
{
    auto preview = figure1Configs();
    EXPECT_EQ(preview.size(), 6u);
}

TEST(RunParamsTest, ParseArgs)
{
    RunParams params;
    char a0[] = "bench";
    char a1[] = "scale=0.25";
    char a2[] = "ops=12345";
    char a3[] = "warmup=99";
    char a4[] = "seed=7";
    char *argv[] = {a0, a1, a2, a3, a4};
    params.parseArgs(5, argv);
    EXPECT_DOUBLE_EQ(params.scale, 0.25);
    EXPECT_EQ(params.measureOps, 12345u);
    EXPECT_EQ(params.warmupOps, 99u);
    EXPECT_EQ(params.seed, 7u);
}

TEST(RunCellTest, ProducesComparableCells)
{
    setQuietLogging(true);
    RunParams params;
    params.scale = 0.02;
    params.warmupOps = 3000;
    params.measureOps = 15000;
    auto native = runCell(workload::WorkloadKind::Gups,
                          *specFromLabel("4K"), params);
    auto virt = runCell(workload::WorkloadKind::Gups,
                        *specFromLabel("4K+4K"), params);
    auto dd = runCell(workload::WorkloadKind::Gups,
                      *specFromLabel("DD"), params);
    EXPECT_EQ(native.workload, "gups");
    EXPECT_EQ(native.config, "4K");
    // The headline ordering of the paper.
    EXPECT_LT(dd.overhead(), native.overhead());
    EXPECT_LT(native.overhead(), virt.overhead());
}

} // namespace
} // namespace emv::sim
