/** @file
 * Machine-level page-size behaviour: the "4K/2M/1G" and "A+B"
 * configuration axes of Figures 11/12.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/experiment.hh"

namespace emv::sim {
namespace {

using workload::WorkloadKind;

class PageSizeTestM : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setQuietLogging(true);
        params.scale = 0.02;
        params.warmupOps = 5000;
        params.measureOps = 30000;
    }

    CellResult
    cell(const char *label)
    {
        return runCell(WorkloadKind::Gups, *specFromLabel(label),
                       params);
    }

    RunParams params;
};

TEST_F(PageSizeTestM, LargerNativePagesReduceOverhead)
{
    auto k4 = cell("4K");
    auto m2 = cell("2M");
    auto g1 = cell("1G");
    EXPECT_GT(k4.overhead(), m2.overhead());
    EXPECT_GE(m2.overhead(), g1.overhead() - 1e-9);
}

TEST_F(PageSizeTestM, GuestLargePagesMapAtRequestedGranule)
{
    auto wl = workload::makeWorkload(WorkloadKind::Gups,
                                     params.seed, params.scale);
    MachineConfig cfg = makeMachineConfig(*specFromLabel("2M"),
                                          params);
    Machine machine(cfg, *wl);
    // Sample the primary region's mappings.
    const auto *region = machine.process().primaryRegion();
    ASSERT_NE(region, nullptr);
    auto t = machine.process().pageTable().translate(region->base);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->size, PageSize::Size2M);
}

TEST_F(PageSizeTestM, VmmLargePagesShortenNestedWalks)
{
    auto v44 = cell("4K+4K");
    auto v42 = cell("4K+2M");
    // Same guest behaviour; cheaper second dimension.
    EXPECT_LT(v42.run.cyclesPerWalk, v44.run.cyclesPerWalk);
    EXPECT_LT(v42.overhead(), v44.overhead());
}

TEST_F(PageSizeTestM, MixedGuestVmmSizesCompose)
{
    auto v21 = cell("2M+1G");
    auto v22 = cell("2M+2M");
    EXPECT_LE(v21.overhead(), v22.overhead() + 0.02);
    // Both beat guest-4K virtualized.
    auto v44 = cell("4K+4K");
    EXPECT_LT(v22.overhead(), v44.overhead());
}

TEST_F(PageSizeTestM, ThpApproximates2M)
{
    params.scale = 0.05;
    auto wl = workload::makeWorkload(WorkloadKind::Mcf, params.seed,
                                     params.scale);
    MachineConfig cfg = makeMachineConfig(*specFromLabel("THP"),
                                          params);
    Machine machine(cfg, *wl);
    machine.run(params.warmupOps);
    EXPECT_GT(machine.os().stats().counterValue("thp_promotions"),
              10u);
}

} // namespace
} // namespace emv::sim
