/** @file Unit tests for the full-machine assembly and run loop. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/machine.hh"

namespace emv::sim {
namespace {

using core::Mode;
using workload::WorkloadKind;

class MachineTest : public ::testing::Test
{
  protected:
    static constexpr double kScale = 0.02;  // ~170 MB gups table.

    void
    SetUp() override
    {
        setQuietLogging(true);
    }

    std::unique_ptr<workload::Workload>
    makeWl(WorkloadKind kind = WorkloadKind::Gups)
    {
        return workload::makeWorkload(kind, 42, kScale);
    }

    MachineConfig
    makeCfg(Mode mode)
    {
        MachineConfig cfg;
        cfg.mode = mode;
        return cfg;
    }
};

TEST_F(MachineTest, NativeRunProducesWork)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::Native), *wl);
    auto run = machine.run(20000);
    EXPECT_EQ(run.accessOps, 20000u);
    EXPECT_GT(run.baseCycles, 0.0);
    EXPECT_GT(run.translationCycles, 0.0);
    EXPECT_GT(run.walks, 0u);
    EXPECT_EQ(run.guestFaults, 0u);  // Pre-populated.
}

TEST_F(MachineTest, VirtualizedCostsExceedNative)
{
    auto wl_native = makeWl();
    Machine native(makeCfg(Mode::Native), *wl_native);
    native.run(5000);
    native.resetStats();
    auto native_run = native.run(30000);

    auto wl_virt = makeWl();
    Machine virt(makeCfg(Mode::BaseVirtualized), *wl_virt);
    virt.run(5000);
    virt.resetStats();
    auto virt_run = virt.run(30000);

    // §VIII: virtualization raises both cycles-per-miss and (via
    // shared nested entries) the miss count itself.
    EXPECT_GT(virt_run.cyclesPerWalk, 1.5 * native_run.cyclesPerWalk);
    EXPECT_GT(virt_run.translationOverhead(),
              native_run.translationOverhead());
}

TEST_F(MachineTest, DualDirectNearZeroOverhead)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::DualDirect), *wl);
    machine.run(5000);
    machine.resetStats();
    auto run = machine.run(30000);
    EXPECT_LT(run.translationOverhead(), 0.01);
    EXPECT_GT(run.fractionBoth, 0.95);
}

TEST_F(MachineTest, VmmDirectNearNative)
{
    auto wl_native = makeWl();
    Machine native(makeCfg(Mode::Native), *wl_native);
    native.run(5000);
    native.resetStats();
    auto native_run = native.run(30000);

    auto wl_vd = makeWl();
    Machine vd(makeCfg(Mode::VmmDirect), *wl_vd);
    vd.run(5000);
    vd.resetStats();
    auto vd_run = vd.run(30000);

    EXPECT_GT(vd_run.fractionVmmOnly, 0.9);
    EXPECT_LT(vd_run.translationOverhead(),
              native_run.translationOverhead() * 1.3 + 0.02);
}

TEST_F(MachineTest, GuestDirectCoversSegmentAccesses)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::GuestDirect), *wl);
    machine.run(5000);
    machine.resetStats();
    auto run = machine.run(30000);
    EXPECT_GT(run.fractionGuestOnly, 0.9);
}

TEST_F(MachineTest, DemandPagingWithoutPrePopulate)
{
    auto wl = makeWl();
    auto cfg = makeCfg(Mode::Native);
    cfg.prePopulate = false;
    Machine machine(cfg, *wl);
    auto run = machine.run(20000);
    EXPECT_GT(run.guestFaults, 0u);
    EXPECT_GT(run.faultCycles, 0.0);
    // Faulted pages are now mapped: a second interval faults less.
    auto second = machine.run(20000);
    EXPECT_LT(second.guestFaults, run.guestFaults);
}

TEST_F(MachineTest, NestedDemandBacking)
{
    auto wl = makeWl();
    auto cfg = makeCfg(Mode::BaseVirtualized);
    cfg.eagerBacking = false;
    Machine machine(cfg, *wl);
    const auto exits_before = machine.vm()->vmExits();
    auto run = machine.run(20000);
    EXPECT_GT(machine.vm()->vmExits(), exits_before);
    EXPECT_GT(run.vmExitCycles, 0.0);
}

TEST_F(MachineTest, ShadowPagingChargesSyncExits)
{
    auto wl = makeWl(WorkloadKind::Memcached);
    auto cfg = makeCfg(Mode::BaseVirtualized);
    cfg.shadowPaging = true;
    Machine machine(cfg, *wl);
    machine.run(5000);
    machine.resetStats();
    // Run long enough for slab churn to hit.
    auto run = machine.run(300000);
    EXPECT_GT(run.remapOps, 0u);
    EXPECT_GT(run.vmExitCycles, 0.0);
    // Walks are 1D over the shadow (native-grade cycles/walk).
    EXPECT_LT(run.cyclesPerWalk, 200.0);
}

TEST_F(MachineTest, RemapChurnInvalidatesAndRepopulates)
{
    auto wl = makeWl(WorkloadKind::Memcached);
    Machine machine(makeCfg(Mode::BaseVirtualized), *wl);
    auto run = machine.run(300000);
    EXPECT_GT(run.remapOps, 0u);
    EXPECT_GT(run.shootdownCycles, 0.0);
}

TEST_F(MachineTest, ResetStatsZeroesInterval)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::Native), *wl);
    machine.run(10000);
    machine.resetStats();
    auto run = machine.run(1000);
    EXPECT_EQ(run.accessOps, 1000u);
    EXPECT_LT(run.translationCycles,
              1000.0 * machine.config().mmu.costs.pteMemCycles * 4);
}

TEST_F(MachineTest, BadFramesProduceEscapes)
{
    auto wl = makeWl();
    auto cfg = makeCfg(Mode::DualDirect);
    cfg.badFrames = 8;
    Machine machine(cfg, *wl);
    EXPECT_EQ(machine.hostMem().badFrameCount(), 8u);
    EXPECT_EQ(machine.mmu().vmmFilter().insertedPages(), 8u);
    machine.run(5000);
    machine.resetStats();
    auto run = machine.run(50000);
    // Overhead stays near zero despite the faults (Fig. 13).
    EXPECT_LT(run.translationOverhead(), 0.02);
}

TEST_F(MachineTest, FragmentedGuestBlocksGuestSegment)
{
    auto wl = makeWl();
    auto cfg = makeCfg(Mode::GuestDirect);
    cfg.guestFragmentation.enabled = true;
    cfg.guestFragmentation.maxRunBytes = 16 * MiB;
    Machine machine(cfg, *wl);
    EXPECT_FALSE(machine.guestSegment().enabled());
    // Still functionally correct, just slow (paging).
    auto run = machine.run(10000);
    EXPECT_EQ(run.accessOps, 10000u);
}

TEST_F(MachineTest, SelfBalloonRecoversGuestSegment)
{
    auto wl = makeWl();
    auto cfg = makeCfg(Mode::GuestDirect);
    cfg.guestFragmentation.enabled = true;
    cfg.guestFragmentation.maxRunBytes = 16 * MiB;
    cfg.extensionReserve = 512 * MiB;
    Machine machine(cfg, *wl);
    ASSERT_FALSE(machine.guestSegment().enabled());
    ASSERT_TRUE(machine.selfBalloonGuestSegment());
    EXPECT_TRUE(machine.guestSegment().enabled());
    machine.run(5000);
    machine.resetStats();
    auto run = machine.run(30000);
    EXPECT_GT(run.fractionGuestOnly, 0.9);
}

TEST_F(MachineTest, HostCompactionUpgradesGuestDirectToDualDirect)
{
    auto wl = makeWl();
    auto cfg = makeCfg(Mode::GuestDirect);
    cfg.contiguousHostReservation = false;
    cfg.hostFragmentation.enabled = true;
    cfg.hostFragmentation.maxRunBytes = 64 * MiB;
    Machine machine(cfg, *wl);
    machine.run(5000);
    machine.resetStats();
    auto before = machine.run(20000);
    EXPECT_LT(before.fractionBoth, 0.1);

    auto migrated = machine.upgradeWithHostCompaction();
    ASSERT_TRUE(migrated.has_value());
    EXPECT_EQ(machine.config().mode, Mode::DualDirect);

    machine.run(5000);
    machine.resetStats();
    auto after = machine.run(20000);
    EXPECT_GT(after.fractionBoth, 0.9);
    EXPECT_LT(after.translationOverhead(),
              before.translationOverhead() / 2);
}

TEST_F(MachineTest, TranslationsAreCorrectAgainstPageTables)
{
    // End-to-end correctness: every translated hPA must equal the
    // software composition of guest PT and backing map.
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::BaseVirtualized), *wl);
    for (int i = 0; i < 3000; ++i) {
        const auto op = machine.workload().next();
        if (op.kind == workload::Op::Kind::Remap)
            continue;
        auto result = machine.mmu().translate(op.va);
        ASSERT_TRUE(result.ok);
        auto guest = machine.process().pageTable().translate(op.va);
        ASSERT_TRUE(guest.has_value());
        auto hpa = machine.vm()->gpaToHpa(guest->pa);
        ASSERT_TRUE(hpa.has_value());
        ASSERT_EQ(result.hpa, *hpa) << hexAddr(op.va);
    }
}

TEST_F(MachineTest, DualDirectMatchesBaseVirtualizedTranslations)
{
    // Same trace, two machines: the 0D path must produce the same
    // physical bytes locations as nested paging (offset aside, the
    // content-visible mapping gva->frame must be consistent within
    // each machine).
    auto wl_dd = makeWl();
    auto wl_bv = makeWl();
    auto dd = std::make_unique<Machine>(makeCfg(Mode::DualDirect),
                                        *wl_dd);
    auto bv = std::make_unique<Machine>(
        makeCfg(Mode::BaseVirtualized), *wl_bv);
    for (int i = 0; i < 2000; ++i) {
        const auto a = wl_dd->next();
        const auto b = wl_bv->next();
        ASSERT_EQ(a.va, b.va);  // Identical traces.
        if (a.kind == workload::Op::Kind::Remap)
            continue;
        auto ra = dd->mmu().translate(a.va);
        auto rb = bv->mmu().translate(b.va);
        ASSERT_TRUE(ra.ok);
        ASSERT_TRUE(rb.ok);
        // Same page offset always.
        ASSERT_EQ(ra.hpa & (kPage4K - 1), rb.hpa & (kPage4K - 1));
    }
}

} // namespace
} // namespace emv::sim
