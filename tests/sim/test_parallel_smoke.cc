/**
 * @file
 * In-process parallel smoke: N worker threads each build, run and
 * destroy an independent Machine while sharing every process-wide
 * service — the stat registry, the audit counters and one telemetry
 * recorder.  This is the library-level twin of `emvsim threads=N`
 * and the concurrency contract the thread-safety annotations
 * (common/thread_safety.hh) promise; run it under the tsan preset
 * to turn the contract into a checked property (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/audit.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/stat_registry.hh"
#include "common/telemetry.hh"
#include "sim/machine.hh"

namespace emv::sim {
namespace {

using core::Mode;
using workload::WorkloadKind;

constexpr unsigned kThreads = 4;
constexpr double kScale = 0.02;
constexpr std::uint64_t kWarmupOps = 4000;
constexpr std::uint64_t kMeasureOps = 16000;

struct ShardOutcome
{
    RunResult run;
    bool completed = false;
};

/** One worker: construct in-thread (concurrent registry add),
 *  warm up, reset, tick the shared recorder over the measured
 *  interval, destroy in-thread (concurrent registry remove). */
void
runShard(unsigned index, Mode mode,
         telemetry::TelemetryRecorder *recorder,
         std::atomic<std::uint64_t> &ops_done, ShardOutcome &out)
{
    auto wl = workload::makeWorkload(WorkloadKind::Gups,
                                     42 + index, kScale);
    MachineConfig cfg;
    cfg.mode = mode;
    Machine machine(cfg, *wl);
    if (!machine.run(kWarmupOps).completed)
        return;
    machine.resetStats();
    if (recorder)
        machine.attachTelemetryTicker(recorder);
    constexpr std::uint64_t kSlice = 2000;
    for (std::uint64_t done = 0; done < kMeasureOps;
         done += kSlice) {
        // Accounted at dispatch: every recorder tick inside run()
        // then happens-after its slice's add, so window deltas
        // reconcile exactly with the recorder's op space.
        ops_done.fetch_add(kSlice, std::memory_order_relaxed);
        if (!machine.run(kSlice).completed)
            return;
    }
    out.run = machine.measuredResult();
    out.completed = true;
}

TEST(ParallelSmoke, MachinesSharingRegistryAndTelemetry)
{
    setQuietLogging(true);
    const std::size_t groups_before = StatRegistry::instance().size();

    const std::string path =
        testing::TempDir() + "parallel_smoke_metrics.jsonl";
    telemetry::TelemetryConfig tcfg;
    tcfg.path = path;
    tcfg.windowOps = 8000;
    telemetry::TelemetryRecorder recorder(tcfg);
    std::atomic<std::uint64_t> ops_done{0};
    recorder.addCounter("ops", [&ops_done] {
        return ops_done.load(std::memory_order_relaxed);
    });
    recorder.addGauge("threads", [] {
        return static_cast<double>(kThreads);
    });
    recorder.setModeSource([] { return std::string("mixed"); });
    ASSERT_TRUE(recorder.openSink());

    // One machine per mode: the shards are heterogeneous, like a
    // sweep driver's would be.
    const Mode modes[kThreads] = {
        Mode::Native, Mode::BaseVirtualized, Mode::DualDirect,
        Mode::VmmDirect};
    std::vector<ShardOutcome> outcomes(kThreads);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back(runShard, t, modes[t], &recorder,
                             std::ref(ops_done),
                             std::ref(outcomes[t]));
    }
    for (auto &worker : workers)
        worker.join();
    recorder.finish();

    // Every shard completed and did real per-machine work.
    for (unsigned t = 0; t < kThreads; ++t) {
        ASSERT_TRUE(outcomes[t].completed) << "shard " << t;
        EXPECT_EQ(outcomes[t].run.accessOps, kMeasureOps)
            << "shard " << t;
        EXPECT_GT(outcomes[t].run.baseCycles, 0.0) << "shard " << t;
    }
    // Machines were destroyed in-thread: the registry shrank back
    // to its pre-test population (no leaked or double-removed
    // groups after concurrent add/remove).
    EXPECT_EQ(StatRegistry::instance().size(), groups_before);

    // The shared recorder saw the union of the measured intervals
    // and emitted strictly ordered, untorn windows.
    const std::uint64_t total =
        std::uint64_t{kThreads} * kMeasureOps;
    EXPECT_EQ(recorder.opsObserved(), total);
    EXPECT_EQ(recorder.windowsEmitted(), total / tcfg.windowOps);

    std::ifstream in(path);
    std::string line;
    std::size_t windows = 0;
    std::uint64_t delta_sum = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        json::Value record;
        ASSERT_TRUE(json::parse(line, record,
                                /*rejectDuplicateKeys=*/true))
            << line;
        EXPECT_EQ(record.find("schema")->string, "emv-metrics-v1");
        EXPECT_EQ(record.find("window")->number,
                  static_cast<double>(windows));
        delta_sum += static_cast<std::uint64_t>(
            record.find("deltas")->find("ops")->number);
        ++windows;
    }
    EXPECT_EQ(windows, total / tcfg.windowOps);
    EXPECT_EQ(delta_sum, total);
}

TEST(ParallelSmoke, SharedAuditCountersUnderConcurrentMachines)
{
    setQuietLogging(true);
    audit::resetCounters();
    audit::setEnabled(true);

    std::atomic<std::uint64_t> ops_done{0};
    std::vector<ShardOutcome> outcomes(kThreads);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back(runShard, t, Mode::DualDirect, nullptr,
                             std::ref(ops_done),
                             std::ref(outcomes[t]));
    }
    for (auto &worker : workers)
        worker.join();
    audit::setEnabled(false);

    for (unsigned t = 0; t < kThreads; ++t)
        ASSERT_TRUE(outcomes[t].completed) << "shard " << t;
    // All four machines funneled their invariant checks into the
    // one process-wide audit group; under tsan this exercises the
    // guarded counter increments from every worker.
    EXPECT_GT(audit::checkCount(), 0u);
    EXPECT_EQ(audit::failureCount(), 0u);
    EXPECT_EQ(audit::mismatchCount(), 0u);
    audit::resetCounters();
}

} // namespace
} // namespace emv::sim
