/**
 * @file
 * Machine-level fault injection and graceful degradation: mid-run
 * DRAM faults, PTE corruption, request failures with retry/backoff,
 * escape-filter saturation, and Table III mode downgrades.
 */

#include <gtest/gtest.h>

#include "common/audit.hh"
#include "common/logging.hh"
#include "sim/machine.hh"

namespace emv::sim {
namespace {

using core::Mode;
using workload::WorkloadKind;

class FaultInjectionTest : public ::testing::Test
{
  protected:
    static constexpr double kScale = 0.02;  // ~170 MB gups table.

    void
    SetUp() override
    {
        setQuietLogging(true);
    }

    std::unique_ptr<workload::Workload>
    makeWl(WorkloadKind kind = WorkloadKind::Gups)
    {
        return workload::makeWorkload(kind, 42, kScale);
    }

    MachineConfig
    makeCfg(Mode mode, const char *faults,
            fault::FaultPolicy policy = fault::FaultPolicy::Degrade)
    {
        MachineConfig cfg;
        cfg.mode = mode;
        auto plan = fault::FaultPlan::parse(faults);
        EXPECT_TRUE(plan.has_value()) << faults;
        if (plan)
            cfg.faultPlan = *plan;
        cfg.faultPolicy = policy;
        return cfg;
    }

    static std::uint64_t
    faultCounter(Machine &machine, const char *name)
    {
        return machine.faultInjector().stats().counterValue(name);
    }
};

TEST_F(FaultInjectionTest, MidRunDramFaultsRecoverByOfflining)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::DualDirect, "dram@2000x8"), *wl);
    auto run = machine.run(12000);

    EXPECT_TRUE(run.completed);
    EXPECT_EQ(machine.terminalFault(), nullptr);
    EXPECT_EQ(faultCounter(machine, "injected_dram"), 8u);
    EXPECT_EQ(machine.vm()->stats().counterValue("frames_offlined"),
              8u);
    // Eight escapes nowhere near the saturation bound: both
    // segments stay live.
    EXPECT_EQ(faultCounter(machine, "downgrades"), 0u);
    EXPECT_EQ(machine.config().mode, Mode::DualDirect);
    EXPECT_TRUE(machine.guestSegment().enabled());
    EXPECT_TRUE(machine.vmmSegment().enabled());
}

TEST_F(FaultInjectionTest, MixedScheduleDowngradesOnceAuditClean)
{
    // The issue's acceptance scenario, in-process: 8 DRAM faults, a
    // failed balloon request and a filter saturation against Dual
    // Direct under policy=degrade must complete, stepping down
    // exactly one lattice level (DD -> VmmDirect), with the
    // differential auditor observing zero mismatches throughout.
    audit::setEnabled(true);
    audit::resetCounters();

    auto wl = makeWl();
    Machine machine(
        makeCfg(Mode::DualDirect,
                "dram@2000x8,balloonfail@3000,filtersat@5000"),
        *wl);
    auto run = machine.run(12000);

    EXPECT_TRUE(run.completed);
    EXPECT_EQ(faultCounter(machine, "downgrades"), 1u);
    EXPECT_EQ(machine.config().mode, Mode::VmmDirect);
    EXPECT_FALSE(machine.guestSegment().enabled());
    EXPECT_TRUE(machine.vmmSegment().enabled());
    EXPECT_GT(audit::checkCount(), 0u);
    EXPECT_EQ(audit::mismatchCount(), 0u);
    EXPECT_EQ(audit::failureCount(), 0u);
    audit::setEnabled(false);
}

TEST_F(FaultInjectionTest, FailFastProducesStructuredReport)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::DualDirect, "dram@1000",
                            fault::FaultPolicy::FailFast),
                    *wl);
    auto run = machine.run(5000);

    EXPECT_FALSE(run.completed);
    EXPECT_LT(run.accessOps, 5000u);
    ASSERT_NE(machine.terminalFault(), nullptr);
    EXPECT_NE(machine.terminalFault()->reason.find("dram"),
              std::string::npos);
    EXPECT_EQ(machine.terminalFault()->opIndex, 1000u);
    EXPECT_EQ(faultCounter(machine, "terminal_faults"), 1u);

    // A dead machine stays dead: further runs do no work.
    auto again = machine.run(100);
    EXPECT_FALSE(again.completed);
    EXPECT_EQ(again.accessOps, 0u);
}

TEST_F(FaultInjectionTest, BalloonFailuresRetryWithBackoff)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::DualDirect, "balloonfail@1000x2"),
                    *wl);
    auto run = machine.run(3000);

    EXPECT_TRUE(run.completed);
    // Two armed failures burn two retries; the third attempt lands.
    EXPECT_EQ(faultCounter(machine, "retries"), 2u);
    EXPECT_EQ(faultCounter(machine, "recoveries"), 1u);
    EXPECT_EQ(faultCounter(machine, "request_failures"), 0u);
    EXPECT_EQ(faultCounter(machine, "injected_request_failures"),
              2u);
}

TEST_F(FaultInjectionTest, HotplugFailureRecoversAndGrants)
{
    auto wl = makeWl();
    auto cfg = makeCfg(Mode::BaseVirtualized, "hotplugfail@1000");
    cfg.extensionReserve = 8 * MiB;
    Machine machine(cfg, *wl);
    auto run = machine.run(3000);

    EXPECT_TRUE(run.completed);
    EXPECT_EQ(faultCounter(machine, "retries"), 1u);
    EXPECT_EQ(faultCounter(machine, "recoveries"), 1u);
    EXPECT_GE(
        machine.vm()->stats().counterValue("extensions_granted"),
        1u);
}

TEST_F(FaultInjectionTest, NestedPteLossRepairsFromBackingMap)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::BaseVirtualized, ""), *wl);
    machine.run(1000);

    auto *vm = machine.vm();
    ASSERT_NE(vm, nullptr);
    ASSERT_FALSE(vm->backingMap().extents().empty());
    const Addr gpa = vm->backingMap().extents().front().gpa;

    // Drop the nested leaf; the gPA->hPA truth survives in the
    // backing map, so the next ensure re-derives the mapping instead
    // of treating the page as unbacked.
    EXPECT_TRUE(vm->dropNestedMapping(gpa));
    EXPECT_EQ(vm->stats().counterValue("nested_mappings_dropped"),
              1u);
    EXPECT_TRUE(vm->ensureBacked(gpa));
    EXPECT_EQ(vm->stats().counterValue("nested_mappings_repaired"),
              1u);

    EXPECT_TRUE(machine.run(1000).completed);
}

TEST_F(FaultInjectionTest, SlotRevocationSwapsPagesOut)
{
    auto wl = makeWl();
    Machine machine(
        makeCfg(Mode::BaseVirtualized, "slotrevoke@1000x4"), *wl);
    auto run = machine.run(8000);

    EXPECT_TRUE(run.completed);
    EXPECT_GE(faultCounter(machine, "injected_slot_revokes"), 1u);
    EXPECT_GE(machine.vm()->stats().counterValue("pages_swapped_out"),
              1u);
}

TEST_F(FaultInjectionTest, DowngradeWalksTheTableThreeLattice)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::DualDirect, ""), *wl);
    machine.run(2000);

    ASSERT_TRUE(machine.downgradeMode());
    EXPECT_EQ(machine.config().mode, Mode::VmmDirect);
    EXPECT_FALSE(machine.guestSegment().enabled());
    EXPECT_TRUE(machine.vmmSegment().enabled());

    ASSERT_TRUE(machine.downgradeMode());
    EXPECT_EQ(machine.config().mode, Mode::BaseVirtualized);
    EXPECT_FALSE(machine.vmmSegment().enabled());

    // The lattice bottoms out at base virtualization.
    EXPECT_FALSE(machine.downgradeMode());
    EXPECT_EQ(machine.config().mode, Mode::BaseVirtualized);
    EXPECT_EQ(machine.mmu().stats().counterValue(
                  "segment_retirements"),
              2u);

    // The machine keeps running correctly as plain 2D nested paging.
    EXPECT_TRUE(machine.run(2000).completed);
}

TEST_F(FaultInjectionTest, NativeDirectDramFaultsEscapeViaFilter)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::NativeDirect, "dram@1000x4"), *wl);
    auto run = machine.run(6000);

    EXPECT_TRUE(run.completed);
    EXPECT_EQ(faultCounter(machine, "injected_dram"), 4u);
    EXPECT_EQ(faultCounter(machine, "filter_escapes"), 4u);
    // Four escapes don't saturate the filter; DS stays on.
    EXPECT_EQ(machine.config().mode, Mode::NativeDirect);
    EXPECT_TRUE(machine.guestSegment().enabled());
}

TEST_F(FaultInjectionTest, GuestPteCorruptionIsRefaultable)
{
    auto wl = makeWl();
    Machine machine(makeCfg(Mode::Native, "guestpte@1000x2"), *wl);
    auto run = machine.run(6000);

    EXPECT_TRUE(run.completed);
    EXPECT_EQ(faultCounter(machine, "injected_guest_pte"), 2u);
    EXPECT_EQ(machine.terminalFault(), nullptr);
}

TEST_F(FaultInjectionTest, FilterSaturationDowngradesExactlyOnce)
{
    auto wl = makeWl();
    Machine machine(
        makeCfg(Mode::NativeDirect, "filtersat@1000,filtersat@2000"),
        *wl);
    auto run = machine.run(6000);

    EXPECT_TRUE(run.completed);
    EXPECT_GE(faultCounter(machine, "filter_saturations"), 1u);
    // The second saturation event finds no live segment left; the
    // downgrade must not fire twice.
    EXPECT_EQ(faultCounter(machine, "downgrades"), 1u);
    EXPECT_EQ(machine.config().mode, Mode::Native);
    EXPECT_FALSE(machine.guestSegment().enabled());
}

} // namespace
} // namespace emv::sim
