/** @file
 * Integration tests: paper-level claims exercised end to end on
 * scaled-down machines (Table I categories, §VIII cost structure,
 * Fig. 13 flatness, Table III transitions, §IX.D shadow split).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/linear_model.hh"
#include "sim/experiment.hh"

namespace emv::sim {
namespace {

using core::Mode;
using workload::WorkloadKind;

class IntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setQuietLogging(true);
        params.scale = 0.02;
        params.warmupOps = 5000;
        params.measureOps = 40000;
    }

    CellResult
    cell(WorkloadKind kind, const char *label)
    {
        return runCell(kind, *specFromLabel(label), params);
    }

    RunParams params;
};

TEST_F(IntegrationTest, PaperHeadlineOrdering)
{
    // DD ≈ DS ≈ 0 < GD ≈ VD ≈ native-4K < base virtualized.
    auto n4k = cell(WorkloadKind::Gups, "4K");
    auto ds = cell(WorkloadKind::Gups, "DS");
    auto bv = cell(WorkloadKind::Gups, "4K+4K");
    auto vd = cell(WorkloadKind::Gups, "4K+VD");
    auto gd = cell(WorkloadKind::Gups, "4K+GD");
    auto dd = cell(WorkloadKind::Gups, "DD");

    EXPECT_LT(ds.overhead(), 0.02);
    EXPECT_LT(dd.overhead(), 0.02);
    EXPECT_GT(bv.overhead(), 1.5 * n4k.overhead());
    EXPECT_LT(vd.overhead(), 1.4 * n4k.overhead() + 0.02);
    EXPECT_LT(gd.overhead(), 1.3 * n4k.overhead() + 0.02);
}

TEST_F(IntegrationTest, LargePagesReduceButDontEliminateOverhead)
{
    // §VIII observation 2: 2M pages shrink virtualization overhead
    // but stay above native 2M.
    auto n2m = cell(WorkloadKind::Gups, "2M");
    auto v44 = cell(WorkloadKind::Gups, "4K+4K");
    auto v42 = cell(WorkloadKind::Gups, "4K+2M");
    auto v22 = cell(WorkloadKind::Gups, "2M+2M");
    EXPECT_LT(v42.overhead(), v44.overhead());
    EXPECT_LT(v22.overhead(), v42.overhead());
    // At full scale 2M+2M stays clearly above native 2M (Fig. 11);
    // at test scale the gap can close to zero but never invert.
    EXPECT_GE(v22.overhead(), n2m.overhead() - 1e-9);
}

TEST_F(IntegrationTest, MissInflationUnderVirtualization)
{
    // §IX.A: nested entries share the L2, inflating miss counts
    // 1.3-1.6x for big-memory workloads.  The effect is strongest
    // when the native L2 hit rate is meaningful, so probe at a
    // scale where the hot set is L2-sized.
    params.scale = 0.01;
    params.measureOps = 80000;
    auto native = cell(WorkloadKind::NpbCg, "4K");
    auto virt = cell(WorkloadKind::NpbCg, "4K+4K");
    const double inflation =
        static_cast<double>(virt.run.l2Misses) /
        static_cast<double>(native.run.l2Misses);
    EXPECT_GT(inflation, 1.1);
    EXPECT_LT(inflation, 2.5);
}

TEST_F(IntegrationTest, CyclesPerMissGrowUnderVirtualization)
{
    // §IX.A: ~2.4x average growth in cycles per miss for 4K+4K.
    auto native = cell(WorkloadKind::NpbCg, "4K");
    auto virt = cell(WorkloadKind::NpbCg, "4K+4K");
    const double ratio =
        virt.run.cyclesPerWalk / native.run.cyclesPerWalk;
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 6.0);  // Bounded by the 24/4 worst case.
}

TEST_F(IntegrationTest, VmmAndGuestDirectCyclesNearNative)
{
    // §IX.A: VD misses cost ~13% more than native, GD ~3%.
    auto native = cell(WorkloadKind::Gups, "4K");
    auto vd = cell(WorkloadKind::Gups, "4K+VD");
    auto gd = cell(WorkloadKind::Gups, "4K+GD");
    EXPECT_LT(vd.run.cyclesPerWalk,
              native.run.cyclesPerWalk * 1.35);
    EXPECT_LT(gd.run.cyclesPerWalk,
              native.run.cyclesPerWalk * 1.25);
}

TEST_F(IntegrationTest, DualDirectEliminatesL2Misses)
{
    // §IX.A: DD removes ~99.9% of L2 TLB misses.
    auto bv = cell(WorkloadKind::Gups, "4K+4K");
    auto dd = cell(WorkloadKind::Gups, "DD");
    EXPECT_LT(static_cast<double>(dd.run.l2Misses),
              0.05 * static_cast<double>(bv.run.l2Misses));
}

TEST_F(IntegrationTest, EscapeFilterKeepsDualDirectFlat)
{
    // Fig. 13: 1-16 bad pages cost almost nothing.
    auto clean = cell(WorkloadKind::Gups, "DD");
    params.badFrames = 16;
    params.badFrameSeed = 7;
    auto faulty = cell(WorkloadKind::Gups, "DD");
    EXPECT_LT(faulty.overhead() - clean.overhead(), 0.01);
}

TEST_F(IntegrationTest, ShadowPagingSplit)
{
    // §IX.D: churny workloads suffer under shadow paging; static
    // ones do not.
    params.measureOps = 250000;
    params.warmupOps = 20000;
    auto churn_shadow = cell(WorkloadKind::Omnetpp, "sh4K");
    auto churn_nested = cell(WorkloadKind::Omnetpp, "4K+4K");

    // Shadow pays exits for churn on top of translation costs.
    EXPECT_GT(churn_shadow.run.vmExitCycles, 0.0);

    // A static workload's shadow run has negligible exit costs.
    auto static_shadow = cell(WorkloadKind::Canneal, "sh4K");
    EXPECT_LT(static_shadow.run.vmExitCycles,
              0.01 * static_shadow.run.baseCycles);
    // And shadow walks are 1D — cheaper per miss than 2D nested.
    EXPECT_LT(static_shadow.run.cyclesPerWalk,
              churn_nested.run.cyclesPerWalk);
}

TEST_F(IntegrationTest, TableIIIGuestFragmentationFlow)
{
    // "Guest physical memory fragmented" row: self-balloon, then
    // Dual Direct performance.
    auto wl = workload::makeWorkload(WorkloadKind::Gups, 42,
                                     params.scale);
    MachineConfig cfg = makeMachineConfig(*specFromLabel("DD"),
                                          params);
    cfg.guestFragmentation.enabled = true;
    cfg.guestFragmentation.maxRunBytes = 8 * MiB;
    cfg.extensionReserve = 512 * MiB;
    Machine machine(cfg, *wl);
    ASSERT_FALSE(machine.guestSegment().enabled());

    ASSERT_TRUE(machine.selfBalloonGuestSegment());
    machine.run(params.warmupOps);
    machine.resetStats();
    auto run = machine.run(params.measureOps);
    EXPECT_LT(run.translationOverhead(), 0.05);
}

TEST_F(IntegrationTest, TableIIIHostFragmentationFlow)
{
    // "Host physical memory fragmented" row: start Guest Direct,
    // compact the host, convert to Dual Direct.
    auto wl = workload::makeWorkload(WorkloadKind::Gups, 42,
                                     params.scale);
    MachineConfig cfg = makeMachineConfig(*specFromLabel("4K+GD"),
                                          params);
    cfg.contiguousHostReservation = false;
    cfg.hostFragmentation.enabled = true;
    cfg.hostFragmentation.maxRunBytes = 32 * MiB;
    Machine machine(cfg, *wl);
    machine.run(params.warmupOps);
    machine.resetStats();
    auto gd_run = machine.run(params.measureOps);

    auto migrated = machine.upgradeWithHostCompaction();
    ASSERT_TRUE(migrated.has_value());
    EXPECT_GT(*migrated, 0u);

    machine.run(params.warmupOps);
    machine.resetStats();
    auto dd_run = machine.run(params.measureOps);
    EXPECT_LT(dd_run.translationOverhead(),
              gd_run.translationOverhead());
    EXPECT_LT(dd_run.translationOverhead(), 0.05);
}

TEST_F(IntegrationTest, ThpHelpsComputeWorkloads)
{
    params.measureOps = 60000;
    auto base = cell(WorkloadKind::CactusADM, "4K");
    auto thp = cell(WorkloadKind::CactusADM, "THP");
    EXPECT_LT(thp.overhead(), base.overhead());
}

TEST_F(IntegrationTest, TableIVModelTracksSimulation)
{
    // Feed measured C_n, C_v and fractions into the Table IV model
    // and compare with the simulated VD walk cycles.
    auto native = cell(WorkloadKind::Gups, "4K");
    auto virt = cell(WorkloadKind::Gups, "4K+4K");
    auto vd = cell(WorkloadKind::Gups, "4K+VD");

    core::ModelInputs in;
    in.cyclesPerMissNative = native.run.cyclesPerWalk;
    in.cyclesPerMissVirtualized = virt.run.cyclesPerWalk;
    in.missesNative = static_cast<double>(native.run.walks);
    in.fractionVmmOnly = vd.run.fractionVmmOnly;
    const double predicted = core::predictVmmDirectCycles(in);
    const double simulated =
        vd.run.cyclesPerWalk * static_cast<double>(vd.run.walks);
    // The model is deliberately simple; agreement within 2x shows
    // the simulation and model are mutually consistent.
    EXPECT_GT(simulated, 0.3 * predicted);
    EXPECT_LT(simulated, 3.0 * predicted);
}

} // namespace
} // namespace emv::sim
