/** @file Shared helpers for emv unit tests. */

#pragma once

#include <cstdint>
#include <vector>

#include "common/ckpt.hh"
#include "mem/phys_memory.hh"
#include "paging/page_table.hh"

namespace emv::test {

/** One layer's checkpoint state as raw encoder bytes. */
template <typename T>
std::vector<std::uint8_t>
ckptBytes(const T &obj)
{
    ckpt::Encoder enc;
    obj.serialize(enc);
    return enc.buffer();
}

/**
 * Restore @p obj from @p bytes; true only when deserialize succeeds
 * and consumes the payload exactly (trailing bytes would mean the
 * save and restore paths disagree about the layout).
 */
template <typename T>
bool
ckptRestore(const std::vector<std::uint8_t> &bytes, T &obj)
{
    ckpt::Decoder dec(bytes.data(), bytes.size());
    return obj.deserialize(dec) && dec.ok() && dec.atEnd();
}

/**
 * Identity MemSpace over host memory with a bump allocator for
 * table frames — the minimal harness for page-table tests.
 */
class BumpMemSpace : public paging::MemSpace
{
  public:
    BumpMemSpace(mem::PhysMemory &mem, Addr frame_area_base)
        : mem(mem), next(frame_area_base)
    {
    }

    std::uint64_t
    read64(Addr addr) const override
    {
        return mem.read64(addr);
    }

    void
    write64(Addr addr, std::uint64_t value) override
    {
        mem.write64(addr, value);
    }

    Addr
    allocTableFrame() override
    {
        const Addr frame = next;
        next += kPage4K;
        mem.zeroFrame(frame);
        ++allocated;
        return frame;
    }

    void
    freeTableFrame(Addr) override
    {
        ++freed;
    }

    std::uint64_t allocated = 0;
    std::uint64_t freed = 0;

  private:
    mem::PhysMemory &mem;
    Addr next;
};

} // namespace emv::test

