/** @file Shared helpers for emv unit tests. */

#pragma once

#include "mem/phys_memory.hh"
#include "paging/page_table.hh"

namespace emv::test {

/**
 * Identity MemSpace over host memory with a bump allocator for
 * table frames — the minimal harness for page-table tests.
 */
class BumpMemSpace : public paging::MemSpace
{
  public:
    BumpMemSpace(mem::PhysMemory &mem, Addr frame_area_base)
        : mem(mem), next(frame_area_base)
    {
    }

    std::uint64_t
    read64(Addr addr) const override
    {
        return mem.read64(addr);
    }

    void
    write64(Addr addr, std::uint64_t value) override
    {
        mem.write64(addr, value);
    }

    Addr
    allocTableFrame() override
    {
        const Addr frame = next;
        next += kPage4K;
        mem.zeroFrame(frame);
        ++allocated;
        return frame;
    }

    void
    freeTableFrame(Addr) override
    {
        ++freed;
    }

    std::uint64_t allocated = 0;
    std::uint64_t freed = 0;

  private:
    mem::PhysMemory &mem;
    Addr next;
};

} // namespace emv::test

