/**
 * @file
 * Figure 11: virtual-memory overhead per big-memory workload.
 *
 * All thirteen configurations of the paper: native 4K/2M/1G,
 * virtualized 4K+4K / 4K+2M / 4K+1G / 2M+2M / 2M+1G / 1G+1G, the
 * unvirtualized direct segment (DS), and the proposed DD / 4K+VD /
 * 4K+GD.  Expected shape (paper): virtualization multiplies native
 * overheads (~3.6x geomean at 4K+4K); 2M pages shrink but do not
 * close the gap; 1G pages are capacity-limited (4 L1 entries); DS
 * and DD are near zero; VD and GD track native 4K.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace emv;
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.5;
    params.warmupOps = 300000;
    params.measureOps = 1200000;
    params.parseArgs(argc, argv);

    bench::runOverheadMatrix(
        "Figure 11: execution-time overhead, big-memory workloads",
        workload::bigMemoryWorkloads(), sim::figure11Configs(),
        params);
    return 0;
}
