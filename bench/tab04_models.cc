/**
 * @file
 * Table IV: linear models vs full simulation.
 *
 * The paper predicts each design's page-walk cycles from measured
 * native/virtualized baselines (C_n, C_v, M_n) and segment-coverage
 * fractions.  We do the same: measure the baselines in simulation,
 * feed them through the Table IV formulas, and compare against the
 * directly simulated walk cycles of each mode.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "core/linear_model.hh"

using namespace emv;
using workload::WorkloadKind;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.25;
    params.warmupOps = 150000;
    params.measureOps = 600000;
    params.parseArgs(argc, argv);

    sim::Table table({"workload", "design", "model cycles/acc",
                      "simulated cycles/acc", "ratio"});

    bench::ThroughputMeter meter;
    for (auto kind : workload::bigMemoryWorkloads()) {
        auto native = sim::runCell(kind, *sim::specFromLabel("4K"),
                                   params);
        auto virt = sim::runCell(kind, *sim::specFromLabel("4K+4K"),
                                 params);
        meter.add(native);
        meter.add(virt);
        const double accesses =
            static_cast<double>(native.run.accessOps);

        core::ModelInputs in;
        in.cyclesPerMissNative = native.run.cyclesPerWalk;
        in.cyclesPerMissVirtualized = virt.run.cyclesPerWalk;
        in.missesNative = static_cast<double>(native.run.walks);

        struct DesignRow
        {
            const char *label;
            const char *name;
        };
        const DesignRow designs[] = {
            {"DS", "Direct Segment"},
            {"DD", "Dual Direct"},
            {"4K+VD", "VMM Direct"},
            {"4K+GD", "Guest Direct"},
        };

        for (const auto &design : designs) {
            auto cell = sim::runCell(
                kind, *sim::specFromLabel(design.label), params);
            meter.add(cell);
            // Coverage fractions measured from the design run.
            core::ModelInputs mi = in;
            mi.fractionBoth = cell.run.fractionBoth;
            mi.fractionVmmOnly = cell.run.fractionVmmOnly;
            mi.fractionGuestOnly = cell.run.fractionGuestOnly;
            mi.fractionDirectSegment =
                static_cast<double>(cell.run.dsFastHits) /
                std::max<double>(
                    1.0, static_cast<double>(cell.run.dsFastHits +
                                             cell.run.walks));

            double model_cycles = 0.0;
            if (std::string(design.label) == "DS")
                model_cycles = core::predictDirectSegmentCycles(mi);
            else if (std::string(design.label) == "DD")
                model_cycles = core::predictDualDirectCycles(mi);
            else if (std::string(design.label) == "4K+VD")
                model_cycles = core::predictVmmDirectCycles(mi);
            else
                model_cycles = core::predictGuestDirectCycles(mi);

            const double simulated =
                cell.run.cyclesPerWalk *
                static_cast<double>(cell.run.walks);
            const double model_pa = model_cycles / accesses;
            const double sim_pa = simulated / accesses;
            table.addRow({workload::workloadName(kind), design.name,
                          sim::fmt(model_pa, 3), sim::fmt(sim_pa, 3),
                          sim::fmt(sim_pa / std::max(model_pa, 1e-9),
                                   2)});
            std::fprintf(stderr, ".");
        }
        std::fprintf(stderr, " %s\n", workload::workloadName(kind));
    }

    std::printf("Table IV: linear cycle models vs simulation "
                "(walk cycles per access)\n\n");
    table.print(std::cout);
    std::printf("\nRatios near 1 mean the analytic model and the "
                "structural simulation agree;\nDS/DD rows compare "
                "against near-zero quantities, so small absolute\n"
                "differences can produce large ratios there.\n");
    bench::writeBenchJson("Table 4 models", meter);
    return 0;
}
