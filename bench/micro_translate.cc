/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot paths:
 * per-mode translation throughput of the Mmu, raw walker costs,
 * TLB lookups, and escape-filter probes.  These measure the
 * *library's* speed (simulation throughput), complementing the
 * figure benches that measure the *modeled* cycles.
 */

#include <benchmark/benchmark.h>

#include "common/logging.hh"
#include "segment/escape_filter.hh"
#include "sim/machine.hh"
#include "tlb/tlb.hh"
#include "workload/workload.hh"

using namespace emv;

namespace {

struct Rig
{
    std::unique_ptr<workload::Workload> wl;
    std::unique_ptr<sim::Machine> machine;
};

Rig
makeRig(core::Mode mode)
{
    setQuietLogging(true);
    Rig rig;
    rig.wl = workload::makeWorkload(workload::WorkloadKind::Gups, 3,
                                    0.02);
    sim::MachineConfig cfg;
    cfg.mode = mode;
    rig.machine = std::make_unique<sim::Machine>(cfg, *rig.wl);
    rig.machine->run(20000);  // Warm.
    return rig;
}

void
translateLoop(benchmark::State &state, core::Mode mode)
{
    auto rig = makeRig(mode);
    for (auto _ : state) {
        auto op = rig.wl->next();
        if (op.kind == workload::Op::Kind::Remap)
            continue;
        auto result = rig.machine->mmu().translate(op.va);
        benchmark::DoNotOptimize(result.hpa);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_TranslateNative(benchmark::State &state)
{
    translateLoop(state, core::Mode::Native);
}

void
BM_TranslateBaseVirtualized(benchmark::State &state)
{
    translateLoop(state, core::Mode::BaseVirtualized);
}

void
BM_TranslateVmmDirect(benchmark::State &state)
{
    translateLoop(state, core::Mode::VmmDirect);
}

void
BM_TranslateDualDirect(benchmark::State &state)
{
    translateLoop(state, core::Mode::DualDirect);
}

void
BM_TlbLookupHit(benchmark::State &state)
{
    tlb::Tlb tlb("bench", 128, 4);
    tlb.insert(tlb::EntryKind::Guest, 0x1000, 0xa000,
               PageSize::Size4K);
    for (auto _ : state) {
        auto hit = tlb.lookup(tlb::EntryKind::Guest, 0x1abc,
                              PageSize::Size4K);
        benchmark::DoNotOptimize(hit);
    }
}

void
BM_EscapeFilterProbe(benchmark::State &state)
{
    segment::EscapeFilter filter;
    for (int i = 0; i < 16; ++i)
        filter.insertPage(static_cast<Addr>(i * 997) << 12);
    Addr addr = 0;
    for (auto _ : state) {
        addr += kPage4K;
        benchmark::DoNotOptimize(filter.mayContain(addr));
    }
}

BENCHMARK(BM_TranslateNative);
BENCHMARK(BM_TranslateBaseVirtualized);
BENCHMARK(BM_TranslateVmmDirect);
BENCHMARK(BM_TranslateDualDirect);
BENCHMARK(BM_TlbLookupHit);
BENCHMARK(BM_EscapeFilterProbe);

} // namespace

BENCHMARK_MAIN();
