/**
 * @file
 * §VIII / §IX.A: the cost of virtualization, decomposed.
 *
 * Two factors explain the blow-up (paper):
 *  1. TLB misses *increase* under virtualization (1.38x graph500,
 *     1.62x memcached, 1.41x GUPS, 1.33x canneal, 1.29x
 *     streamcluster) because nested entries share the TLB.
 *  2. Cycles per miss grow (up to 3.5x NPB:CG; avg 2.4x / 1.5x /
 *     1.6x for 4K+4K / 4K+2M / 4K+1G).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace emv;
using workload::WorkloadKind;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.02;  // L2-competitive hot sets show inflation.
    params.warmupOps = 200000;
    params.measureOps = 800000;
    params.parseArgs(argc, argv);

    std::vector<WorkloadKind> kinds = {
        WorkloadKind::Graph500, WorkloadKind::Memcached,
        WorkloadKind::NpbCg,    WorkloadKind::Gups,
        WorkloadKind::Canneal,  WorkloadKind::Streamcluster,
    };

    sim::Table miss_table({"workload", "native L2 misses",
                           "virt L2 misses", "inflation",
                           "paper (where given)"});
    sim::Table cpm_table({"workload", "C_n (4K)", "C_v (4K+4K)",
                          "C_v/C_n", "C_v (4K+2M)", "ratio",
                          "C_v (4K+1G)", "ratio"});

    auto paper_inflation = [](WorkloadKind kind) -> const char * {
        switch (kind) {
          case WorkloadKind::Graph500: return "1.38x";
          case WorkloadKind::Memcached: return "1.62x";
          case WorkloadKind::Gups: return "1.41x";
          case WorkloadKind::Canneal: return "1.33x";
          case WorkloadKind::Streamcluster: return "1.29x";
          default: return "-";
        }
    };

    bench::ThroughputMeter meter;
    double ratio_sum44 = 0, ratio_sum42 = 0, ratio_sum41 = 0;
    for (auto kind : kinds) {
        auto native = sim::runCell(kind, *sim::specFromLabel("4K"),
                                   params);
        auto v44 = sim::runCell(kind, *sim::specFromLabel("4K+4K"),
                                params);
        auto v42 = sim::runCell(kind, *sim::specFromLabel("4K+2M"),
                                params);
        auto v41 = sim::runCell(kind, *sim::specFromLabel("4K+1G"),
                                params);
        meter.add(native);
        meter.add(v44);
        meter.add(v42);
        meter.add(v41);

        const double inflation =
            static_cast<double>(v44.run.l2Misses) /
            std::max<double>(1.0,
                             static_cast<double>(
                                 native.run.l2Misses));
        miss_table.addRow(
            {workload::workloadName(kind),
             std::to_string(native.run.l2Misses),
             std::to_string(v44.run.l2Misses),
             sim::fmt(inflation, 2) + "x", paper_inflation(kind)});

        const double cn = native.run.cyclesPerWalk;
        const double r44 = v44.run.cyclesPerWalk / cn;
        const double r42 = v42.run.cyclesPerWalk / cn;
        const double r41 = v41.run.cyclesPerWalk / cn;
        ratio_sum44 += r44;
        ratio_sum42 += r42;
        ratio_sum41 += r41;
        cpm_table.addRow({workload::workloadName(kind),
                          sim::fmt(cn, 1),
                          sim::fmt(v44.run.cyclesPerWalk, 1),
                          sim::fmt(r44, 2) + "x",
                          sim::fmt(v42.run.cyclesPerWalk, 1),
                          sim::fmt(r42, 2) + "x",
                          sim::fmt(v41.run.cyclesPerWalk, 1),
                          sim::fmt(r41, 2) + "x"});
        std::fprintf(stderr, "%s done\n",
                     workload::workloadName(kind));
    }

    std::printf("Section VIII / IX.A: TLB miss inflation under "
                "virtualization\n\n");
    miss_table.print(std::cout);
    std::printf("\nCycles per TLB miss (paper avg growth: 2.4x "
                "4K+4K, 1.5x 4K+2M, 1.6x 4K+1G)\n\n");
    cpm_table.print(std::cout);
    const double n = static_cast<double>(kinds.size());
    std::printf("\nMeasured average growth: %.2fx (4K+4K)  %.2fx "
                "(4K+2M)  %.2fx (4K+1G)\n",
                ratio_sum44 / n, ratio_sum42 / n, ratio_sum41 / n);
    bench::writeBenchJson("Section 8 cost breakdown", meter);
    return 0;
}
