/**
 * @file
 * Figure 12: virtual-memory overhead per compute workload.
 *
 * SPEC 2006 (cactusADM, GemsFDTD, mcf, omnetpp) and PARSEC
 * (canneal, streamcluster) under native 4K/THP, virtualized
 * combinations, and VMM Direct (the mode the paper recommends for
 * compute workloads: no guest/application changes).  Expected
 * shape: cactusADM and mcf keep high overheads even with THP;
 * virtualization amplifies everything; 4K+VD tracks native 4K and
 * THP+VD tracks native THP.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace emv;
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.5;
    params.warmupOps = 300000;
    params.measureOps = 1200000;
    params.parseArgs(argc, argv);

    bench::runOverheadMatrix(
        "Figure 12: execution-time overhead, compute workloads",
        workload::computeWorkloads(), sim::figure12Configs(),
        params);
    return 0;
}
