/**
 * @file
 * Ablation: MMU caches on the 2D walk (translation caching [7],
 * large-reach MMU caches [12]).
 *
 * The paper's §IX.A notes its Δ estimates are pessimistic because
 * translation caching reduces walk work.  This sweep toggles the
 * paging-structure caches and prices the 2D walk with and without
 * them, showing how far real 4K+4K walks sit from the 24-reference
 * worst case — and that the proposed modes beat even generously
 * cached 2D walks.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace emv;
using workload::WorkloadKind;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.25;
    params.warmupOps = 150000;
    params.measureOps = 600000;
    params.parseArgs(argc, argv);

    sim::Table table({"workload", "config", "PSC", "refs/walk",
                      "cycles/walk", "overhead"});

    bench::ThroughputMeter meter;
    for (auto kind : {WorkloadKind::Gups, WorkloadKind::Graph500}) {
        for (const char *label : {"4K", "4K+4K", "4K+VD", "DD"}) {
            for (bool psc : {true, false}) {
                auto wl = workload::makeWorkload(kind, params.seed,
                                                 params.scale);
                auto cfg = sim::makeMachineConfig(
                    *sim::specFromLabel(label), params);
                cfg.mmu.walkCachesEnabled = psc;
                sim::Machine machine(cfg, *wl);
                machine.run(params.warmupOps);
                machine.resetStats();
                auto run = meter.run(machine, params.measureOps);

                const auto &stats = machine.mmu().stats();
                const double refs = static_cast<double>(
                    stats.counterValue("guest_refs") +
                    stats.counterValue("nested_refs") +
                    stats.counterValue("native_refs"));
                const double walks = std::max<double>(
                    1.0,
                    static_cast<double>(
                        stats.counterValue("walks")));
                table.addRow({workload::workloadName(kind), label,
                              psc ? "on" : "off",
                              sim::fmt(refs / walks, 2),
                              sim::fmt(run.cyclesPerWalk, 1),
                              sim::pct(run.translationOverhead())});
                std::fprintf(stderr, ".");
            }
        }
        std::fprintf(stderr, " %s done\n",
                     workload::workloadName(kind));
    }

    std::printf("Ablation: paging-structure caches on/off\n\n");
    table.print(std::cout);
    std::printf("\n4K+4K without PSCs approaches the Fig. 2 "
                "worst case; the proposed modes\nare largely "
                "insensitive because they bypass the cached "
                "levels entirely.\n");
    bench::writeBenchJson("Ablation walk cache", meter);
    return 0;
}
