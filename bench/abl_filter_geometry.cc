/**
 * @file
 * Ablation: escape-filter geometry (§V / §IX.C design choice).
 *
 * The paper picks a 256-bit parallel Bloom filter with four H3 hash
 * functions and claims it tolerates 16 faulty pages with near-zero
 * false-positive cost.  This sweep varies filter bits and hash
 * count, reporting measured and analytic false-positive rates and
 * the end-to-end overhead each geometry induces in Dual Direct.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/rng.hh"
#include "segment/escape_filter.hh"

using namespace emv;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.1;
    params.warmupOps = 50000;
    params.measureOps = 250000;
    params.parseArgs(argc, argv);

    std::printf("Ablation: escape-filter geometry, 16 faulty pages "
                "inserted\n\n");

    sim::Table table({"bits", "hashes", "analytic FP", "measured FP",
                      "DD overhead w/ 16 faults"});

    bench::ThroughputMeter meter;
    for (unsigned bits : {64u, 128u, 256u, 512u, 1024u}) {
        for (unsigned hashes : {2u, 4u}) {
            // Stand-alone false-positive measurement.
            segment::EscapeFilter filter(bits, hashes, 0xabc);
            Rng rng(5);
            for (int i = 0; i < 16; ++i)
                filter.insertPage(rng.nextBelow(1ull << 36) << 12);
            std::uint64_t fp = 0;
            const std::uint64_t probes = 200000;
            for (std::uint64_t i = 0; i < probes; ++i)
                fp += filter.mayContain(((1ull << 41) + i) << 12);
            const double measured =
                static_cast<double>(fp) /
                static_cast<double>(probes);

            // End-to-end: Dual Direct with this filter and 16
            // faults.
            sim::RunParams p = params;
            p.badFrames = 16;
            auto spec = *sim::specFromLabel("DD");
            auto wl = workload::makeWorkload(
                workload::WorkloadKind::Gups, p.seed, p.scale);
            auto cfg = sim::makeMachineConfig(spec, p);
            cfg.mmu.filterBits = bits;
            cfg.mmu.filterHashes = hashes;
            sim::Machine machine(cfg, *wl);
            machine.run(p.warmupOps);
            machine.resetStats();
            auto run = meter.run(machine, p.measureOps);

            table.addRow(
                {std::to_string(bits), std::to_string(hashes),
                 sim::pct(filter.expectedFalsePositiveRate()),
                 sim::pct(measured),
                 sim::pct(run.translationOverhead())});
            std::fprintf(stderr, ".");
        }
    }
    std::fprintf(stderr, "\n");
    table.print(std::cout);
    std::printf("\nThe paper's 256-bit / 4-hash point should show "
                "~0.2%% false positives and\nnear-zero overhead; "
                "64-bit filters saturate and leak walks.\n");
    bench::writeBenchJson("Ablation filter geometry", meter);
    return 0;
}
