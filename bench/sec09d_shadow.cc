/**
 * @file
 * §IX.D: shadow paging vs the proposed designs.
 *
 * Paper: shadow paging eliminates 2D walks but traps on every guest
 * page-table update.  Workloads with allocation churn suffer
 * (memcached 29.2% / GemsFDTD 12.2% / omnetpp 8.7% / canneal 6.6%
 * slowdown at 4K); static workloads stay under 5%.  VMM Direct
 * serves both classes (at most 7.3% slower than native).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace emv;
using workload::WorkloadKind;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.25;
    params.warmupOps = 200000;
    params.measureOps = 2000000;  // Churn needs long runs.
    params.parseArgs(argc, argv);

    const std::vector<WorkloadKind> kinds = {
        WorkloadKind::Memcached, WorkloadKind::Omnetpp,
        WorkloadKind::GemsFDTD,  WorkloadKind::Canneal,
        WorkloadKind::Mcf,       WorkloadKind::Streamcluster,
    };

    sim::Table table({"workload", "native", "shadow 4K",
                      "shadow slowdown", "sync exits", "4K+VD",
                      "VD slowdown"});

    bench::ThroughputMeter meter;
    for (auto kind : kinds) {
        auto native = sim::runCell(kind, *sim::specFromLabel("4K"),
                                   params);
        auto shadow = sim::runCell(kind, *sim::specFromLabel("sh4K"),
                                   params);
        auto vd = sim::runCell(kind, *sim::specFromLabel("4K+VD"),
                               params);
        meter.add(native);
        meter.add(shadow);
        meter.add(vd);

        // Slowdown vs native execution time, the paper's metric.
        const double shadow_slow =
            shadow.run.execCycles() / native.run.execCycles() - 1.0;
        const double vd_slow =
            vd.run.execCycles() / native.run.execCycles() - 1.0;
        const auto exits = static_cast<std::uint64_t>(
            shadow.run.vmExitCycles /
            1.0);  // cycles; exits printed below as cycles share
        (void)exits;
        table.addRow(
            {workload::workloadName(kind),
             sim::pct(native.run.translationOverhead()),
             sim::pct(shadow.run.totalOverhead()),
             sim::pct(shadow_slow),
             sim::pct(shadow.run.vmExitCycles /
                      shadow.run.execCycles()),
             sim::pct(vd.run.totalOverhead()), sim::pct(vd_slow)});
        std::fprintf(stderr, "%s done\n",
                     workload::workloadName(kind));
    }

    std::printf("Section IX.D: shadow paging vs VMM Direct "
                "(slowdown vs native)\n\n");
    table.print(std::cout);
    std::printf("\nExpected shape: allocation-churn workloads "
                "(memcached, omnetpp) pay\nVM-exit costs under "
                "shadow paging; static workloads do not; VMM Direct "
                "is\nuniformly close to native.\n");
    bench::writeBenchJson("Section 9d shadow", meter);
    return 0;
}
