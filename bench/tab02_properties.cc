/**
 * @file
 * Table II: properties of the virtualized modes, printed from the
 * mode-traits database that drives the simulator (so any drift
 * between documentation and implementation shows up here).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/mode.hh"
#include "sim/report.hh"

using namespace emv;
using core::Mode;

int
main()
{
    const Mode modes[] = {Mode::BaseVirtualized, Mode::DualDirect,
                          Mode::VmmDirect, Mode::GuestDirect};

    sim::Table table({"property", "Base Virtualized", "Dual Direct",
                      "VMM Direct", "Guest Direct"});

    auto row = [&](const char *name, auto getter) {
        std::vector<std::string> cells{name};
        for (Mode mode : modes)
            cells.push_back(getter(core::modeTraits(mode)));
        table.addRow(std::move(cells));
    };

    row("page walk dimensions", [](const core::ModeTraits &t) {
        return std::to_string(t.walkDims) + "D";
    });
    row("# memory accesses (most walks)",
        [](const core::ModeTraits &t) {
            return std::to_string(t.walkRefs);
        });
    row("# base-bound checks", [](const core::ModeTraits &t) {
        return std::to_string(t.baseBoundChecks);
    });
    row("guest OS modifications", [](const core::ModeTraits &t) {
        return std::string(t.guestOsChanges ? "required" : "none");
    });
    row("VMM modifications", [](const core::ModeTraits &t) {
        return std::string(t.vmmChanges ? "required" : "none");
    });
    row("application category", [](const core::ModeTraits &t) {
        return std::string(t.appCategory);
    });
    row("page sharing", [](const core::ModeTraits &t) {
        return std::string(core::supportName(t.pageSharing));
    });
    row("ballooning", [](const core::ModeTraits &t) {
        return std::string(core::supportName(t.ballooning));
    });
    row("guest swapping", [](const core::ModeTraits &t) {
        return std::string(core::supportName(t.guestSwapping));
    });
    row("VMM swapping", [](const core::ModeTraits &t) {
        return std::string(core::supportName(t.vmmSwapping));
    });

    std::cout << "Table II: tradeoffs among translation modes\n\n";
    table.print(std::cout);
    // No simulation runs here (the table reads the traits database),
    // so the throughput section is an explicit zero, not an omission.
    bench::writeBenchJson("Table 2 properties",
                          bench::ThroughputMeter());
    return 0;
}
