/**
 * @file
 * Ablation: self-ballooning vs guest memory compaction (§IV).
 *
 * Both mechanisms create the contiguous guest-physical run a guest
 * segment needs.  The paper's pitch for self-ballooning is that it
 * gets there "quickly ... without the cost of memory compaction":
 * ballooning moves no data (it trades address ranges), while
 * compaction must migrate every allocated page out of the target
 * window.  This bench fragments guest memory to various degrees and
 * reports the work each mechanism performs and the overhead of the
 * Dual Direct mode each one enables.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "os/compaction.hh"

using namespace emv;
using workload::WorkloadKind;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.15;
    params.warmupOps = 80000;
    params.measureOps = 300000;
    params.parseArgs(argc, argv);

    sim::Table table({"free-run cap", "mechanism", "pages copied",
                      "segment", "DD overhead after"});

    bench::ThroughputMeter meter;
    for (Addr cap_mb : {64ull, 16ull, 4ull}) {
        // --- Self-ballooning path.
        {
            auto wl = workload::makeWorkload(
                WorkloadKind::Gups, params.seed, params.scale);
            auto cfg = sim::makeMachineConfig(
                *sim::specFromLabel("DD"), params);
            cfg.guestFragmentation.enabled = true;
            cfg.guestFragmentation.movable = true;
            cfg.guestFragmentation.maxRunBytes = cap_mb * MiB;
            cfg.extensionReserve = alignUp(
                wl->info().footprintBytes + 64 * MiB, kPage2M);
            sim::Machine machine(cfg, *wl);
            const bool ok = machine.selfBalloonGuestSegment();
            machine.run(params.warmupOps);
            machine.resetStats();
            auto run = meter.run(machine, params.measureOps);
            table.addRow(
                {std::to_string(cap_mb) + " MB", "self-balloon",
                 "0 (no data moved)", ok ? "created" : "FAILED",
                 sim::pct(run.translationOverhead())});
        }
        // --- Guest-compaction path.
        {
            auto wl = workload::makeWorkload(
                WorkloadKind::Gups, params.seed, params.scale);
            auto cfg = sim::makeMachineConfig(
                *sim::specFromLabel("DD"), params);
            cfg.guestFragmentation.enabled = true;
            cfg.guestFragmentation.movable = true;
            cfg.guestFragmentation.maxRunBytes = cap_mb * MiB;
            sim::Machine machine(cfg, *wl);

            const auto *primary =
                machine.process().primaryRegion();
            os::CompactionDaemon daemon(
                machine.os(),
                [&](os::Process &, Addr va, PageSize size) {
                    machine.mmu().invalidateGuestPage(va, size);
                });
            auto run_iv = daemon.createFreeRun(primary->bytes);
            bool segment_ok = false;
            if (run_iv) {
                auto regs = machine.os().createGuestSegment(
                    machine.process());
                if (regs) {
                    machine.mmu().setGuestSegment(*regs);
                    machine.mmu().flushGuestContext();
                    segment_ok = true;
                }
            }
            machine.run(params.warmupOps);
            machine.resetStats();
            auto run = meter.run(machine, params.measureOps);
            table.addRow({std::to_string(cap_mb) + " MB",
                          "guest compaction",
                          std::to_string(daemon.migratedPages()),
                          segment_ok ? "created" : "FAILED",
                          sim::pct(run.translationOverhead())});
        }
        std::fprintf(stderr, "cap=%lluMB done\n",
                     static_cast<unsigned long long>(cap_mb));
    }

    std::printf("Ablation: self-ballooning vs guest compaction "
                "(§IV)\n\n");
    table.print(std::cout);
    std::printf("\nBoth end at Dual Direct performance; the "
                "difference is the work column —\nballooning "
                "trades addresses, compaction copies pages "
                "(and the fragmentation\ncap barely matters for "
                "ballooning, while compaction's cost scales with "
                "it).\n");
    bench::writeBenchJson("Ablation balloon vs compaction", meter);
    return 0;
}
