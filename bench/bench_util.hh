/** @file Shared helpers for the figure/table bench binaries. */

#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/profile.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "workload/workload.hh"

namespace emv::bench {

/**
 * Accumulates wall-clock throughput across a bench's simulation
 * phases: how many trace ops ran and how long the host took, for
 * the emv-bench-v1 "throughput" section.
 */
class ThroughputMeter
{
  public:
    /** Run @p ops trace ops on @p machine, timing the call. */
    sim::RunResult
    run(sim::Machine &machine, std::uint64_t ops)
    {
        const auto t0 = std::chrono::steady_clock::now();
        auto result = machine.run(ops);
        add(ops, elapsedNs(t0));
        return result;
    }

    /** Fold in a cell measured by sim::runCell. */
    void add(const sim::CellResult &cell)
    { add(cell.measuredOps, cell.hostNs); }

    /** Fold in externally timed work. */
    void
    add(std::uint64_t ops, std::uint64_t host_ns)
    {
        _ops += ops;
        _ns += host_ns;
    }

    static std::uint64_t
    elapsedNs(std::chrono::steady_clock::time_point since)
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - since)
                .count());
    }

    std::uint64_t ops() const { return _ops; }
    std::uint64_t hostNs() const { return _ns; }

  private:
    std::uint64_t _ops = 0;
    std::uint64_t _ns = 0;
};

/**
 * Write BENCH_<slug>.json for a bench without a cell matrix (the
 * matrix benches get throughput via runOverheadMatrix instead).
 */
inline void
writeBenchJson(const std::string &title, const ThroughputMeter &meter)
{
    const std::string path = "BENCH_" + sim::slugify(title) + ".json";
    if (sim::writeBenchThroughputJson(path, title, meter.ops(),
                                      meter.hostNs()))
        std::printf("\nwrote %s\n", path.c_str());
    else
        emv_warn("cannot write %s", path.c_str());
}

/**
 * Run a (workloads x configs) overhead matrix and print it the way
 * the paper's grouped bar charts read: one row per configuration,
 * one column per workload, cells are execution-time overhead.
 */
inline void
runOverheadMatrix(const std::string &title,
                  const std::vector<workload::WorkloadKind> &kinds,
                  const std::vector<sim::ConfigSpec> &configs,
                  const sim::RunParams &params)
{
    params.applyObservability();
    std::printf("%s\n", title.c_str());
    std::printf("(scale=%.3g warmup=%llu ops=%llu seed=%llu)\n\n",
                params.scale,
                static_cast<unsigned long long>(params.warmupOps),
                static_cast<unsigned long long>(params.measureOps),
                static_cast<unsigned long long>(params.seed));

    std::vector<std::string> headers{"config"};
    for (auto kind : kinds)
        headers.emplace_back(workload::workloadName(kind));
    sim::Table table(headers);

    std::vector<sim::CellResult> cells;
    for (const auto &spec : configs) {
        std::vector<std::string> row{spec.label};
        for (auto kind : kinds) {
            auto cell = sim::runCell(kind, spec, params);
            row.push_back(sim::pct(cell.overhead()));
            cells.push_back(std::move(cell));
            std::fprintf(stderr, ".");
        }
        table.addRow(std::move(row));
        std::fprintf(stderr, " %s\n", spec.label.c_str());
    }
    table.print(std::cout);

    // Machine-readable companion next to the text table, so plots
    // never have to scrape stdout.
    const std::string json_path =
        "BENCH_" + sim::slugify(title) + ".json";
    if (sim::writeCellMatrixJson(json_path, title, cells))
        std::printf("\nwrote %s\n", json_path.c_str());
    else
        emv_warn("cannot write %s", json_path.c_str());

    if (!params.statsJsonPath.empty() &&
        !sim::writeStatsJson(params.statsJsonPath))
        emv_warn("cannot write %s", params.statsJsonPath.c_str());
    if (params.profile) {
        std::printf("\n");
        prof::report(std::cout);
    }
}

} // namespace emv::bench

