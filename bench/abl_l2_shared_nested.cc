/**
 * @file
 * Ablation: nested translations sharing the L2 TLB.
 *
 * Table VI notes the evaluation hardware keeps nested (gPA→hPA)
 * entries in the same physical TLB as regular entries; §IX.A blames
 * this for the 1.3-1.6x TLB-miss inflation under virtualization.
 * This ablation toggles the sharing off (a dedicated, infinite-miss
 * NTLB-less design) to isolate how much of the virtualization
 * overhead is capacity contention vs walk length.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace emv;
using workload::WorkloadKind;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.1;
    params.warmupOps = 150000;
    params.measureOps = 600000;
    params.parseArgs(argc, argv);

    sim::Table table({"workload", "native misses",
                      "virt misses (shared)", "inflation",
                      "virt misses (no NTLB)",
                      "virt overhead (shared)",
                      "virt overhead (no NTLB)"});

    bench::ThroughputMeter meter;
    for (auto kind :
         {WorkloadKind::Graph500, WorkloadKind::Memcached,
          WorkloadKind::NpbCg, WorkloadKind::Canneal}) {
        auto native = sim::runCell(kind, *sim::specFromLabel("4K"),
                                   params);

        auto spec = *sim::specFromLabel("4K+4K");
        auto shared_cell = sim::runCell(kind, spec, params);
        meter.add(native);
        meter.add(shared_cell);

        auto wl = workload::makeWorkload(kind, params.seed,
                                         params.scale);
        auto cfg = sim::makeMachineConfig(spec, params);
        cfg.mmu.nestedTlbShared = false;
        sim::Machine machine(cfg, *wl);
        machine.run(params.warmupOps);
        machine.resetStats();
        auto isolated = meter.run(machine, params.measureOps);

        const double inflation =
            static_cast<double>(shared_cell.run.l2Misses) /
            std::max<double>(
                1.0, static_cast<double>(native.run.l2Misses));
        table.addRow({workload::workloadName(kind),
                      std::to_string(native.run.l2Misses),
                      std::to_string(shared_cell.run.l2Misses),
                      sim::fmt(inflation, 2) + "x",
                      std::to_string(isolated.l2Misses),
                      sim::pct(shared_cell.run.totalOverhead()),
                      sim::pct(isolated.totalOverhead())});
        std::fprintf(stderr, "%s done\n",
                     workload::workloadName(kind));
    }

    std::printf("Ablation: shared vs dedicated nested-TLB capacity "
                "(the §IX.A inflation mechanism)\n\n");
    table.print(std::cout);
    std::printf("\nWithout sharing, guest L2 misses drop back "
                "toward native counts, but every\nnested lookup "
                "walks the nested table, so per-miss cost rises — "
                "the design\ntension real NTLBs resolve with "
                "dedicated capacity.\n");
    bench::writeBenchJson("Ablation L2 shared nested", meter);
    return 0;
}
