/**
 * @file
 * Figure 1: preview of virtual-memory overheads.
 *
 * Paper series (selected workloads): native 4K vs virtualized
 * 4K+4K / 4K+2M / 4K+1G, and the proposed DD and 4K+VD.  Expected
 * shape: virtualization multiplies the native overhead (~3.6x
 * geomean), larger VMM pages help but do not close the gap, DD is
 * near zero and VD is near native.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace emv;
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.25;
    params.warmupOps = 300000;
    params.measureOps = 1500000;
    params.parseArgs(argc, argv);

    bench::runOverheadMatrix(
        "Figure 1: execution-time overhead of virtual memory "
        "(preview)",
        {workload::WorkloadKind::Graph500,
         workload::WorkloadKind::Memcached,
         workload::WorkloadKind::Gups},
        sim::figure1Configs(), params);
    return 0;
}
