/**
 * @file
 * Figure 13: normalized execution time with 1-16 bad pages.
 *
 * The paper runs each big-memory workload in Dual Direct mode with
 * 1..16 randomly placed hard-faulted pages (30 random placements
 * each) and plots execution time normalized to fault-free Dual
 * Direct, with 95% confidence intervals.  Expected shape: flat —
 * under 0.06% impact at 16 faults (GUPS 0.5%).
 *
 * midrun=1 switches from boot-time bad frames to *mid-run* DRAM
 * hard faults (the fault-injection subsystem's dram events, spread
 * evenly across the measure interval): each fault is serviced live
 * — frame offlined, contents re-homed, escape inserted into the
 * Bloom filter — and the curve must stay just as flat.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace emv;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.15;
    params.warmupOps = 80000;
    params.measureOps = 300000;
    int trials = 10;  // The paper used 30: pass trials=30.
    bool midrun = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "trials=", 7) == 0)
            trials = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "midrun=", 7) == 0)
            midrun = std::atoi(argv[i] + 7) != 0;
    }
    params.parseArgs(argc, argv);
    const int kTrials = trials;

    // Evenly spaced mid-run DRAM fault schedule for `bad` faults.
    auto midrunSpec = [&params](unsigned bad) {
        std::string spec;
        for (unsigned i = 0; i < bad; ++i) {
            const std::uint64_t op =
                params.warmupOps +
                (i + 1) * params.measureOps / (bad + 1);
            if (!spec.empty())
                spec += ',';
            spec += "dram@" + std::to_string(op);
        }
        return spec;
    };

    const std::vector<workload::WorkloadKind> kinds =
        workload::bigMemoryWorkloads();

    std::printf("Figure 13: execution time with %s bad pages, "
                "normalized to fault-free Dual Direct\n",
                midrun ? "mid-run" : "boot-time");
    std::printf("(%d random fault placements per point, 95%% CI)\n\n",
                kTrials);

    std::vector<std::string> headers{"bad pages"};
    for (auto kind : kinds) {
        headers.emplace_back(std::string(workload::workloadName(kind)) +
                             " mean±ci");
    }
    sim::Table table(headers);

    // Fault-free baselines.
    bench::ThroughputMeter meter;
    std::vector<double> baseline;
    for (auto kind : kinds) {
        auto cell = sim::runCell(kind, *sim::specFromLabel("DD"),
                                 params);
        meter.add(cell);
        baseline.push_back(cell.run.execCycles());
        std::fprintf(stderr, "baseline %s done\n",
                     workload::workloadName(kind));
    }

    for (unsigned bad : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<std::string> row{std::to_string(bad)};
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            std::vector<double> samples;
            for (int trial = 0; trial < kTrials; ++trial) {
                sim::RunParams p = params;
                if (midrun) {
                    p.faultSpec = midrunSpec(bad);
                    p.faultSeed = 1000 + trial;
                } else {
                    p.badFrames = bad;
                    p.badFrameSeed = 1000 + trial;
                }
                auto cell = sim::runCell(
                    kinds[k], *sim::specFromLabel("DD"), p);
                meter.add(cell);
                samples.push_back(cell.run.execCycles() /
                                  baseline[k]);
            }
            auto ci = confidence95(samples);
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.4f±%.4f", ci.mean,
                          ci.halfWidth);
            row.emplace_back(buf);
            std::fprintf(stderr, ".");
        }
        table.addRow(std::move(row));
        std::fprintf(stderr, " bad=%u\n", bad);
    }
    table.print(std::cout);
    std::printf("\nPaper: <=0.06%% slowdown at 16 faults (GUPS "
                "0.5%%); values of ~1.00 reproduce it.\n");
    bench::writeBenchJson("Figure 13 escape filter", meter);
    return 0;
}
