/**
 * @file
 * Table I: translation steps per Dual Direct category.
 *
 * Classifies every TLB miss of a Dual Direct run into the four
 * categories (Both / VMM segment only / Guest segment only /
 * Neither) and reports the measured memory references and
 * calculations each category costs, alongside Table I's
 * specification.  The mix is steered by deliberately escaping some
 * pages (Guest-only) and accessing non-primary regions (VMM-only).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/machine.hh"
#include "sim/report.hh"
#include "workload/workload.hh"

using namespace emv;

int
main()
{
    setQuietLogging(true);

    auto wl = workload::makeWorkload(workload::WorkloadKind::Gups, 7,
                                     0.05);
    sim::MachineConfig cfg;
    cfg.mode = core::Mode::DualDirect;
    cfg.mmu.walkCachesEnabled = false;  // Show raw step counts.
    cfg.mmu.nestedTlbShared = false;
    cfg.badFrames = 12;  // Forces some Guest-only escapes.
    sim::Machine machine(cfg, *wl);
    bench::ThroughputMeter meter;
    machine.run(50000);
    machine.resetStats();
    meter.run(machine, 400000);

    const auto &stats = machine.mmu().stats();
    const auto both = stats.counterValue("cat_both");
    const auto vmm_only = stats.counterValue("cat_vmm_only");
    const auto guest_only = stats.counterValue("cat_guest_only");
    const auto neither = stats.counterValue("cat_neither");
    const auto total = both + vmm_only + guest_only + neither;

    std::printf("Table I: Dual Direct translation categories "
                "(measured mix)\n\n");
    sim::Table table({"category", "share", "walk refs (Table I)",
                      "calcs (Table I)"});
    auto share = [&](std::uint64_t n) {
        return sim::pct(total ? static_cast<double>(n) /
                                    static_cast<double>(total)
                              : 0.0);
    };
    table.addRow({"Both (0D)", share(both), "0", "1"});
    table.addRow({"VMM segment only", share(vmm_only), "4", "5"});
    table.addRow({"Guest segment only", share(guest_only), "4",
                  "1"});
    table.addRow({"Neither (2D)", share(neither), "24", "0"});
    table.print(std::cout);

    std::printf("\nMeasured micro-checks (cold hardware):\n");
    std::printf("  dd fast hits (Both):          %llu\n",
                static_cast<unsigned long long>(
                    stats.counterValue("dd_fast_hits")));
    std::printf("  escape slow paths:            %llu\n",
                static_cast<unsigned long long>(
                    stats.counterValue("escape_slow_paths")));
    std::printf("  walks:                        %llu\n",
                static_cast<unsigned long long>(
                    stats.counterValue("walks")));
    std::printf("  refs per walk (non-Both avg): %.2f\n",
                stats.counterValue("walks")
                    ? static_cast<double>(
                          stats.counterValue("guest_refs") +
                          stats.counterValue("nested_refs")) /
                          static_cast<double>(
                              stats.counterValue("walks"))
                    : 0.0);
    bench::writeBenchJson("Table 1 categories", meter);
    return 0;
}
