/**
 * @file
 * Table III + Fig. 9: modes utilized in fragmented systems.
 *
 * Plays out the paper's three big-memory scenarios end to end and
 * reports the overhead before and after each recovery mechanism:
 *
 *  1. Host fragmented:  Guest Direct, slowly converted to Dual
 *     Direct with host memory compaction.
 *  2. Guest fragmented: Dual Direct enabled via self-ballooning
 *     (balloon out scattered pages, hot-add contiguous gPA).
 *  3. Host+guest fragmented: self-ballooning first, host
 *     compaction after.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace emv;
using core::Mode;
using workload::WorkloadKind;

namespace {

sim::RunParams gParams;
bench::ThroughputMeter gMeter;

double
measure(sim::Machine &machine)
{
    machine.run(gParams.warmupOps);
    machine.resetStats();
    return gMeter.run(machine, gParams.measureOps)
        .translationOverhead();
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    gParams.scale = 0.15;
    gParams.warmupOps = 100000;
    gParams.measureOps = 400000;
    gParams.parseArgs(argc, argv);

    sim::Table table({"scenario", "initial mode", "overhead before",
                      "mechanism", "work", "final mode",
                      "overhead after"});

    // --- Scenario 1: host physical memory fragmented.
    {
        auto wl = workload::makeWorkload(WorkloadKind::Gups,
                                         gParams.seed,
                                         gParams.scale);
        auto cfg = sim::makeMachineConfig(
            *sim::specFromLabel("4K+GD"), gParams);
        cfg.contiguousHostReservation = false;
        cfg.hostFragmentation.enabled = true;
        cfg.hostFragmentation.maxRunBytes = 64 * MiB;
        sim::Machine machine(cfg, *wl);
        const double before = measure(machine);
        auto migrated = machine.upgradeWithHostCompaction();
        const double after = measure(machine);
        table.addRow(
            {"host fragmented", "Guest Direct", sim::pct(before),
             "host compaction",
             migrated ? std::to_string(*migrated) + " pages moved"
                      : "failed",
             core::modeName(machine.config().mode),
             sim::pct(after)});
        std::fprintf(stderr, "scenario 1 done\n");
    }

    // --- Scenario 2: guest physical memory fragmented.
    {
        auto wl = workload::makeWorkload(WorkloadKind::Gups,
                                         gParams.seed,
                                         gParams.scale);
        auto cfg = sim::makeMachineConfig(*sim::specFromLabel("DD"),
                                          gParams);
        cfg.guestFragmentation.enabled = true;
        cfg.guestFragmentation.maxRunBytes = 16 * MiB;
        cfg.extensionReserve =
            alignUp(wl->info().footprintBytes + 64 * MiB, kPage2M);
        sim::Machine machine(cfg, *wl);
        const double before = measure(machine);  // Paging fallback.
        const bool ok = machine.selfBalloonGuestSegment();
        const double after = measure(machine);
        table.addRow({"guest fragmented", "DD (segment failed)",
                      sim::pct(before), "self-ballooning",
                      ok ? "balloon+hot-add" : "failed",
                      "Dual Direct", sim::pct(after)});
        std::fprintf(stderr, "scenario 2 done\n");
    }

    // --- Scenario 3: both fragmented.
    {
        auto wl = workload::makeWorkload(WorkloadKind::Gups,
                                         gParams.seed,
                                         gParams.scale);
        auto cfg = sim::makeMachineConfig(
            *sim::specFromLabel("4K+GD"), gParams);
        cfg.contiguousHostReservation = false;
        cfg.hostFragmentation.enabled = true;
        cfg.hostFragmentation.maxRunBytes = 64 * MiB;
        cfg.guestFragmentation.enabled = true;
        cfg.guestFragmentation.maxRunBytes = 16 * MiB;
        cfg.extensionReserve =
            alignUp(wl->info().footprintBytes + 64 * MiB, kPage2M);
        sim::Machine machine(cfg, *wl);
        const double before = measure(machine);
        const bool balloon_ok = machine.selfBalloonGuestSegment();
        const double mid = measure(machine);
        auto migrated = machine.upgradeWithHostCompaction();
        const double after = measure(machine);
        char work[96];
        std::snprintf(work, sizeof(work), "%s; %s pages moved",
                      balloon_ok ? "self-balloon" : "balloon failed",
                      migrated ? std::to_string(*migrated).c_str()
                               : "compaction failed");
        table.addRow({"host+guest fragmented",
                      "GD (segment failed)", sim::pct(before),
                      "self-balloon, then compaction", work,
                      core::modeName(machine.config().mode),
                      sim::pct(after)});
        std::printf("  (scenario 3 intermediate, Guest Direct after "
                    "self-balloon: %s)\n",
                    sim::pct(mid).c_str());
        std::fprintf(stderr, "scenario 3 done\n");
    }

    std::printf("\nTable III: fragmented-system recovery flows\n\n");
    table.print(std::cout);
    bench::writeBenchJson("Table 3 fragmentation", gMeter);
    return 0;
}
