/**
 * @file
 * Figure 2: the 2D nested page walk state machine.
 *
 * Reproduces the headline count: a native x86-64 walk makes up to 4
 * memory references; a virtualized 2D walk makes up to 24
 * (5 per guest level x 4 levels + 4 for the data gPA).  We measure
 * actual cold-walk reference counts from the simulator with MMU
 * caches disabled, then show how each proposed mode flattens the
 * walk (Table II's "# of memory accesses" row).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/logging.hh"
#include "core/mmu.hh"
#include "sim/machine.hh"
#include "sim/report.hh"
#include "workload/workload.hh"

using namespace emv;

namespace {

struct ModeRow
{
    const char *label;
    core::Mode mode;
};

} // namespace

int
main()
{
    setQuietLogging(true);

    const ModeRow rows[] = {
        {"native 1D", core::Mode::Native},
        {"base virtualized 2D", core::Mode::BaseVirtualized},
        {"VMM Direct", core::Mode::VmmDirect},
        {"Guest Direct", core::Mode::GuestDirect},
        {"Dual Direct", core::Mode::DualDirect},
    };

    std::printf("Figure 2 / Table II: memory references per cold "
                "page walk\n\n");
    sim::Table table({"mode", "refs/walk (cold)", "calcs/walk",
                      "paper says"});

    bench::ThroughputMeter meter;
    for (const auto &row : rows) {
        auto wl = workload::makeWorkload(workload::WorkloadKind::Gups,
                                         1, 0.02);
        sim::MachineConfig cfg;
        cfg.mode = row.mode;
        // Cold hardware: no MMU caches, no nested TLB, so every
        // walk shows its full reference count.
        cfg.mmu.walkCachesEnabled = false;
        cfg.mmu.nestedTlbShared = false;
        sim::Machine machine(cfg, *wl);
        meter.run(machine, 50000);

        const auto &stats = machine.mmu().stats();
        const double walks = static_cast<double>(
            stats.counterValue("walks"));
        const double dd_hits = static_cast<double>(
            stats.counterValue("dd_fast_hits") +
            stats.counterValue("ds_fast_hits"));
        const double refs = static_cast<double>(
            stats.counterValue("guest_refs") +
            stats.counterValue("nested_refs") +
            stats.counterValue("native_refs"));
        const double calcs =
            static_cast<double>(stats.counterValue("calculations"));
        const double denom = std::max(walks + dd_hits, 1.0);

        const char *expect =
            row.mode == core::Mode::Native ? "4"
            : row.mode == core::Mode::BaseVirtualized ? "24"
            : row.mode == core::Mode::VmmDirect ? "4 (+5 calcs)"
            : row.mode == core::Mode::GuestDirect ? "4 (+1 calc)"
                                                  : "0 (+1 calc)";
        table.addRow({row.label, sim::fmt(refs / denom, 2),
                      sim::fmt(calcs / std::max(walks, 1.0), 2),
                      expect});
    }
    table.print(std::cout);
    std::printf("\nNote: Dual Direct resolves most misses without "
                "invoking the walker at all;\nits refs/walk average "
                "includes the rare escape/fallback walks only.\n");
    bench::writeBenchJson("Figure 2 walk refs", meter);
    return 0;
}
