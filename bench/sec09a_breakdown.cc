/**
 * @file
 * §IX.A performance breakdown of the proposed designs.
 *
 * Paper claims verified here:
 *  - a VMM Direct miss costs ~13% more than native, Guest Direct
 *    ~3% more;
 *  - Dual Direct removes ~99.9% of L2 TLB misses;
 *  - the coverage fractions (F_DD / F_VD / F_GD) are near 1 for
 *    big-memory workloads.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace emv;
using workload::WorkloadKind;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    sim::RunParams params;
    params.scale = 0.25;
    params.warmupOps = 150000;
    params.measureOps = 800000;
    params.parseArgs(argc, argv);

    sim::Table table({"workload", "C_n", "VD C/miss", "vs native",
                      "GD C/miss", "vs native", "DD L2-miss cut",
                      "F_VD", "F_GD", "F_DD"});

    bench::ThroughputMeter meter;
    for (auto kind : workload::bigMemoryWorkloads()) {
        auto native = sim::runCell(kind, *sim::specFromLabel("4K"),
                                   params);
        auto bv = sim::runCell(kind, *sim::specFromLabel("4K+4K"),
                               params);
        auto vd = sim::runCell(kind, *sim::specFromLabel("4K+VD"),
                               params);
        auto gd = sim::runCell(kind, *sim::specFromLabel("4K+GD"),
                               params);
        auto dd = sim::runCell(kind, *sim::specFromLabel("DD"),
                               params);
        meter.add(native);
        meter.add(bv);
        meter.add(vd);
        meter.add(gd);
        meter.add(dd);

        const double cn = native.run.cyclesPerWalk;
        const double cut =
            1.0 - static_cast<double>(dd.run.l2Misses) /
                      std::max<double>(
                          1.0,
                          static_cast<double>(bv.run.l2Misses));
        table.addRow(
            {workload::workloadName(kind), sim::fmt(cn, 1),
             sim::fmt(vd.run.cyclesPerWalk, 1),
             sim::fmt((vd.run.cyclesPerWalk / cn - 1.0) * 100.0, 1) +
                 "%",
             sim::fmt(gd.run.cyclesPerWalk, 1),
             sim::fmt((gd.run.cyclesPerWalk / cn - 1.0) * 100.0, 1) +
                 "%",
             sim::pct(cut), sim::pct(vd.run.fractionVmmOnly),
             sim::pct(gd.run.fractionGuestOnly),
             sim::pct(dd.run.fractionBoth)});
        std::fprintf(stderr, "%s done\n",
                     workload::workloadName(kind));
    }

    std::printf("Section IX.A: per-design breakdown (paper: VD "
                "+13%%, GD +3%% cycles per miss;\nDD removes "
                "~99.9%% of L2 misses)\n\n");
    table.print(std::cout);
    bench::writeBenchJson("Section 9a breakdown", meter);
    return 0;
}
