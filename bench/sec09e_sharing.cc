/**
 * @file
 * §IX.E: content-based page sharing potential.
 *
 * The paper co-schedules pairs of (smaller) big-memory VMs and
 * measures how much memory content-based sharing could reclaim:
 * under 3%, because the bulk of memory holds workload-unique data;
 * OS code pages share fine and stay page-mapped under the new
 * modes anyway.
 *
 * We build VM pairs, fill each VM's memory the way the workloads
 * would (unique data in the heap, a common "kernel image" in low
 * memory, untouched free pages), scan, and report the reclaimable
 * fraction of *used* (non-zero) memory and of total memory.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/report.hh"
#include "vmm/page_sharing.hh"
#include "vmm/vmm.hh"
#include "workload/workload.hh"

using namespace emv;
using workload::WorkloadKind;

namespace {

constexpr Addr kVmRam = 512 * MiB;
constexpr Addr kKernelImage = 24 * MiB;

/** Fill a VM the way its workload would occupy memory. */
void
fillVm(vmm::Vm &vm, WorkloadKind kind, std::uint64_t seed)
{
    Rng rng(seed);
    // Shared kernel image at the bottom of guest memory.
    for (Addr off = 0; off < kKernelImage; off += kPage4K)
        vm.guestPhys().write64(off, 0xbadc0de000 + off);

    // Workload data: unique content across VMs, sized like a
    // scaled-down footprint, in the high range.
    auto wl = workload::makeWorkload(kind, seed, 0.04);
    Addr bytes =
        std::min<Addr>(wl->info().footprintBytes, 320 * MiB);
    const Addr base = 4 * GiB;
    for (Addr off = 0; off < bytes; off += kPage4K) {
        vm.guestPhys().write64(base + off,
                               seed * 0x9e3779b97f4a7c15ull ^
                                   (base + off));
    }
    // A realistic sprinkle of page-cache duplication: ~1% of data
    // pages hold common library content.
    for (Addr off = 0; off < bytes / 128; off += kPage4K)
        vm.guestPhys().write64(base + bytes + off, 0x11b0000 + off);
}

/** Count non-zero (used) frames of a VM. */
std::uint64_t
usedFrames(vmm::Vmm &vmm, vmm::Vm &vm)
{
    std::uint64_t used = 0;
    for (const auto &extent : vm.backingMap().extents()) {
        for (Addr off = 0; off < extent.bytes; off += kPage4K) {
            if (vmm.hostMem().read64(extent.hpa + off) != 0)
                ++used;
        }
    }
    return used;
}

} // namespace

int
main()
{
    setQuietLogging(true);

    const std::vector<WorkloadKind> kinds =
        workload::bigMemoryWorkloads();

    sim::Table table({"VM pair", "used frames", "duplicate frames",
                      "saved (of used)", "saved (of total)"});

    bench::ThroughputMeter meter;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        for (std::size_t j = i; j < kinds.size(); ++j) {
            mem::PhysMemory host(2 * GiB);
            vmm::Vmm vmm(host, 2 * GiB);
            vmm::VmConfig cfg;
            cfg.ramBytes = kVmRam;
            cfg.lowRamBytes = 64 * MiB;
            cfg.ioGapStart = 64 * MiB;
            cfg.ioGapEnd = 4 * GiB;
            // Put high RAM right above a "gap" at 4 GB for realism.
            auto &a = vmm.createVm("a", cfg);
            auto &b = vmm.createVm("b", cfg);
            fillVm(a, kinds[i], 1);
            fillVm(b, kinds[j], 2);

            vmm::PageSharing sharing(vmm);
            // Throughput here meters the scan itself: one "op" per
            // scanned frame.
            const auto t0 = std::chrono::steady_clock::now();
            auto report = sharing.scan({&a, &b});
            meter.add(report.scannedFrames,
                      bench::ThroughputMeter::elapsedNs(t0));
            const std::uint64_t used =
                usedFrames(vmm, a) + usedFrames(vmm, b);
            // Zero (free) frames trivially dedupe; discount them as
            // the paper's methodology does by reporting savings on
            // used memory.
            const std::uint64_t zero_frames =
                report.scannedFrames - used;
            const std::uint64_t real_dups =
                report.duplicateFrames > zero_frames
                    ? report.duplicateFrames - zero_frames
                    : 0;
            const double of_used =
                used ? static_cast<double>(real_dups) /
                           static_cast<double>(used)
                     : 0.0;
            const double of_total =
                static_cast<double>(real_dups) /
                static_cast<double>(report.scannedFrames);

            std::string pair =
                std::string(workload::workloadName(kinds[i])) +
                " + " + workload::workloadName(kinds[j]);
            table.addRow({pair, std::to_string(used),
                          std::to_string(real_dups),
                          sim::pct(of_used), sim::pct(of_total)});
            std::fprintf(stderr, "%s done\n", pair.c_str());
        }
    }

    std::printf("Section IX.E: content-based page sharing across "
                "co-scheduled VM pairs\n(paper: no more than 3%% "
                "savings for big-memory pairs)\n\n");
    table.print(std::cout);
    bench::writeBenchJson("Section 9e sharing", meter);
    return 0;
}
